//! Runtime values and column data types.

use crate::error::SqlError;
use std::cmp::Ordering;
use std::fmt;

/// Column data types supported by the engine — the subset the Cloudstone
/// schema and the heartbeat table need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`INT` / `BIGINT`).
    Int,
    /// 64-bit float (`DOUBLE` / `FLOAT`).
    Double,
    /// UTF-8 string (`VARCHAR` / `TEXT`).
    Text,
    /// Boolean (`BOOLEAN`).
    Bool,
    /// Microseconds since the Unix epoch (`TIMESTAMP`); the paper needed a
    /// microsecond-resolution UDF because MySQL's native functions resolve
    /// to seconds (§III-A).
    Timestamp,
}

impl DataType {
    /// SQL keyword for display.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOLEAN",
            DataType::Timestamp => "TIMESTAMP",
        }
    }
}

/// A runtime value. `Null` is a distinct variant (SQL three-valued logic is
/// implemented in the expression evaluator).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Int(i64),
    Double(f64),
    Text(String),
    Bool(bool),
    /// Microseconds since the Unix epoch.
    Timestamp(i64),
}

impl Value {
    /// True when the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value's natural data type (`None` for NULL).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// Coerce to the column type `ty`, applying the engine's (small) set of
    /// implicit conversions: Int↔Double, Int→Timestamp, Bool→Int.
    pub fn coerce_to(self, ty: DataType) -> Result<Value, SqlError> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (v @ Value::Int(_), DataType::Int) => Ok(v),
            (v @ Value::Double(_), DataType::Double) => Ok(v),
            (v @ Value::Text(_), DataType::Text) => Ok(v),
            (v @ Value::Bool(_), DataType::Bool) => Ok(v),
            (v @ Value::Timestamp(_), DataType::Timestamp) => Ok(v),
            (Value::Int(i), DataType::Double) => Ok(Value::Double(i as f64)),
            (Value::Double(d), DataType::Int) => Ok(Value::Int(d as i64)),
            (Value::Int(i), DataType::Timestamp) => Ok(Value::Timestamp(i)),
            (Value::Timestamp(t), DataType::Int) => Ok(Value::Int(t)),
            (Value::Bool(b), DataType::Int) => Ok(Value::Int(b as i64)),
            (Value::Int(i), DataType::Bool) => Ok(Value::Bool(i != 0)),
            (v, ty) => Err(SqlError::TypeMismatch(format!(
                "cannot store {v:?} in {} column",
                ty.name()
            ))),
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL (unknown) or
    /// the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Double(a), Double(b)) => a.partial_cmp(b),
            (Int(a), Double(b)) => (*a as f64).partial_cmp(b),
            (Double(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Timestamp(a), Int(b)) => Some(a.cmp(b)),
            (Int(a), Timestamp(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering for ORDER BY and index keys: NULLs first, then by type
    /// class, then by value. Unlike [`Value::sql_cmp`] this is total.
    pub fn index_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Double(_) | Value::Timestamp(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => match class(self).cmp(&class(other)) {
                // Same class but incomparable can only be NaN doubles.
                Ordering::Equal => self.sql_cmp(other).unwrap_or(Ordering::Equal),
                o => o,
            },
        }
    }

    /// Render as a SQL literal — used when substituting parameters into
    /// statement-based binlog text.
    pub fn to_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Double(d) => {
                if d.fract() == 0.0 && d.is_finite() {
                    format!("{d:.1}")
                } else {
                    format!("{d}")
                }
            }
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bool(b) => (if *b { "TRUE" } else { "FALSE" }).to_string(),
            Value::Timestamp(t) => t.to_string(),
        }
    }

    /// Truthiness for WHERE evaluation (NULL is not true).
    pub fn is_true(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Double(d) => *d != 0.0,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Double(3.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn timestamp_int_interop() {
        assert_eq!(
            Value::Timestamp(10).sql_cmp(&Value::Int(10)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(5).coerce_to(DataType::Timestamp),
            Ok(Value::Timestamp(5))
        );
    }

    #[test]
    fn index_cmp_is_total_with_nulls_first() {
        let mut vs = [
            Value::Text("b".into()),
            Value::Null,
            Value::Int(3),
            Value::Int(1),
            Value::Bool(true),
        ];
        vs.sort_by(|a, b| a.index_cmp(b));
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Int(1));
        assert_eq!(vs[3], Value::Int(3));
        assert_eq!(vs[4], Value::Text("b".into()));
    }

    #[test]
    fn literal_rendering_escapes_quotes() {
        assert_eq!(Value::Text("it's".into()).to_literal(), "'it''s'");
        assert_eq!(Value::Null.to_literal(), "NULL");
        assert_eq!(Value::Int(-5).to_literal(), "-5");
        assert_eq!(Value::Bool(true).to_literal(), "TRUE");
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            Value::Int(1).coerce_to(DataType::Double),
            Ok(Value::Double(1.0))
        );
        assert!(Value::Text("x".into()).coerce_to(DataType::Int).is_err());
        assert_eq!(Value::Null.coerce_to(DataType::Int), Ok(Value::Null));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_true());
        assert!(Value::Int(2).is_true());
        assert!(!Value::Int(0).is_true());
        assert!(!Value::Null.is_true());
        assert!(!Value::Text("t".into()).is_true());
    }
}
