//! The binary log: ordered, encoded writeset events for replication.
//!
//! The master appends one event group per committed transaction; slaves
//! receive events (shipped by `amdb-repl` over the simulated network) and
//! re-apply them. Two formats are supported, as in MySQL:
//!
//! * **Statement-based** (the paper's setup — "synchronized in the format of
//!   SQL statement across replicas", §III-A): the SQL text is logged *as
//!   written*, with its bound parameter values shipped alongside rather than
//!   substituted into the text. Keeping the text canonical is what lets a
//!   slave's statement→plan cache hit on every repetition of a parameterized
//!   statement. Non-deterministic functions stay intact either way, so
//!   `NOW_MICROS()` re-evaluates against each slave's own clock. This is
//!   exactly the mechanism the paper's heartbeat exploits.
//! * **Row-based**: the changed row images are logged; apply is deterministic
//!   and cheaper, at the price of larger events (ablation A3).
//!
//! Events are binary-encoded with a small TLV scheme (via `bytes`) and
//! round-trip tested, because the replication layer ships *bytes*, not Rust
//! objects — the event size feeds the network model.

use crate::error::SqlError;
use crate::exec::{RowChange, RowChangeKind};
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Log sequence number: the position of an event in the master's binlog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl std::fmt::Display for Lsn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

/// Binlog event format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinlogFormat {
    Statement,
    Row,
}

/// Payload of one event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventPayload {
    /// Statement-based: the SQL text as executed on the master plus its
    /// bound parameter values, re-executed on the slave. The text is the
    /// slave's plan-cache key, so it ships unsubstituted.
    Statement { sql: String, params: Vec<Value> },
    /// Row-based: concrete row changes to apply.
    Rows { changes: Vec<RowChange> },
}

impl EventPayload {
    /// Number of row changes (1 for a statement event, which the slave
    /// re-executes as a unit).
    pub fn change_count(&self) -> usize {
        match self {
            EventPayload::Statement { .. } => 1,
            EventPayload::Rows { changes } => changes.len(),
        }
    }
}

/// One replication event: an LSN, the master commit timestamp (master local
/// clock, µs), and the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct BinlogEvent {
    pub lsn: Lsn,
    /// Master's local wall-clock at commit, in microseconds.
    pub commit_ts_micros: i64,
    pub payload: EventPayload,
}

impl BinlogEvent {
    /// Encode to bytes (the unit shipped over the simulated network).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u64(self.lsn.0);
        buf.put_i64(self.commit_ts_micros);
        match &self.payload {
            EventPayload::Statement { sql, params } => {
                buf.put_u8(0);
                put_str(&mut buf, sql);
                put_row(&mut buf, params);
            }
            EventPayload::Rows { changes } => {
                buf.put_u8(1);
                buf.put_u32(changes.len() as u32);
                for c in changes {
                    put_str(&mut buf, &c.table);
                    match &c.kind {
                        RowChangeKind::Insert { row } => {
                            buf.put_u8(0);
                            put_row(&mut buf, row);
                        }
                        RowChangeKind::Update { before, after } => {
                            buf.put_u8(1);
                            put_row(&mut buf, before);
                            put_row(&mut buf, after);
                        }
                        RowChangeKind::Delete { row } => {
                            buf.put_u8(2);
                            put_row(&mut buf, row);
                        }
                    }
                }
            }
        }
        buf.freeze()
    }

    /// Decode from bytes.
    pub fn decode(mut buf: Bytes) -> Result<BinlogEvent, SqlError> {
        let need = |buf: &Bytes, n: usize| -> Result<(), SqlError> {
            if buf.remaining() < n {
                Err(SqlError::BinlogCorrupt(format!(
                    "need {n} bytes, have {}",
                    buf.remaining()
                )))
            } else {
                Ok(())
            }
        };
        need(&buf, 17)?;
        let lsn = Lsn(buf.get_u64());
        let commit_ts_micros = buf.get_i64();
        let tag = buf.get_u8();
        let payload = match tag {
            0 => EventPayload::Statement {
                sql: get_str(&mut buf)?,
                params: get_row(&mut buf)?,
            },
            1 => {
                need(&buf, 4)?;
                let n = buf.get_u32() as usize;
                // Cap the pre-allocation: a corrupt length must not trigger a
                // huge allocation before the per-change reads detect EOF.
                let mut changes = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let table = get_str(&mut buf)?;
                    need(&buf, 1)?;
                    let kind = match buf.get_u8() {
                        0 => RowChangeKind::Insert {
                            row: get_row(&mut buf)?,
                        },
                        1 => RowChangeKind::Update {
                            before: get_row(&mut buf)?,
                            after: get_row(&mut buf)?,
                        },
                        2 => RowChangeKind::Delete {
                            row: get_row(&mut buf)?,
                        },
                        t => {
                            return Err(SqlError::BinlogCorrupt(format!("unknown change tag {t}")))
                        }
                    };
                    changes.push(RowChange { table, kind });
                }
                EventPayload::Rows { changes }
            }
            t => return Err(SqlError::BinlogCorrupt(format!("unknown payload tag {t}"))),
        };
        Ok(BinlogEvent {
            lsn,
            commit_ts_micros,
            payload,
        })
    }

    /// Encoded size in bytes — the replication layer uses this to model
    /// shipping cost.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, SqlError> {
    if buf.remaining() < 4 {
        return Err(SqlError::BinlogCorrupt("truncated string length".into()));
    }
    let n = buf.get_u32() as usize;
    if buf.remaining() < n {
        return Err(SqlError::BinlogCorrupt("truncated string body".into()));
    }
    let bytes = buf.copy_to_bytes(n);
    String::from_utf8(bytes.to_vec())
        .map_err(|_| SqlError::BinlogCorrupt("invalid utf-8 in string".into()))
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64(*i);
        }
        Value::Double(d) => {
            buf.put_u8(2);
            buf.put_f64(*d);
        }
        Value::Text(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.put_u8(4);
            buf.put_u8(*b as u8);
        }
        Value::Timestamp(t) => {
            buf.put_u8(5);
            buf.put_i64(*t);
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value, SqlError> {
    if !buf.has_remaining() {
        return Err(SqlError::BinlogCorrupt("truncated value tag".into()));
    }
    let need = |buf: &Bytes, n: usize| -> Result<(), SqlError> {
        if buf.remaining() < n {
            Err(SqlError::BinlogCorrupt("truncated value body".into()))
        } else {
            Ok(())
        }
    };
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            need(buf, 8)?;
            Ok(Value::Int(buf.get_i64()))
        }
        2 => {
            need(buf, 8)?;
            Ok(Value::Double(buf.get_f64()))
        }
        3 => Ok(Value::Text(get_str(buf)?)),
        4 => {
            need(buf, 1)?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        5 => {
            need(buf, 8)?;
            Ok(Value::Timestamp(buf.get_i64()))
        }
        t => Err(SqlError::BinlogCorrupt(format!("unknown value tag {t}"))),
    }
}

fn put_row(buf: &mut BytesMut, row: &[Value]) {
    buf.put_u32(row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

fn get_row(buf: &mut Bytes) -> Result<Vec<Value>, SqlError> {
    if buf.remaining() < 4 {
        return Err(SqlError::BinlogCorrupt("truncated row length".into()));
    }
    let n = buf.get_u32() as usize;
    let mut row = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        row.push(get_value(buf)?);
    }
    Ok(row)
}

/// The master's append-only binary log.
///
/// A log normally starts at LSN 0, but a log opened with
/// [`Binlog::starting_at`] continues an existing LSN space from `base` —
/// how a promoted replica under the shared-log backend keeps appending into
/// the cluster-wide log position instead of restarting from zero.
#[derive(Debug, Clone, Default)]
pub struct Binlog {
    events: Vec<BinlogEvent>,
    /// LSN of the first event this log will hold (0 for a fresh master).
    base: u64,
}

impl Binlog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty log whose first append will be assigned `base` — the LSN-space
    /// continuation used by shared-log promotion.
    pub fn starting_at(base: Lsn) -> Self {
        Self {
            events: Vec::new(),
            base: base.0,
        }
    }

    /// LSN of the first event this log holds (or would hold).
    pub fn base(&self) -> Lsn {
        Lsn(self.base)
    }

    /// Append a payload with the given commit timestamp; returns its LSN.
    pub fn append(&mut self, commit_ts_micros: i64, payload: EventPayload) -> Lsn {
        let lsn = Lsn(self.base + self.events.len() as u64);
        self.events.push(BinlogEvent {
            lsn,
            commit_ts_micros,
            payload,
        });
        lsn
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The next LSN to be assigned.
    pub fn head(&self) -> Lsn {
        Lsn(self.base + self.events.len() as u64)
    }

    /// Fetch an event by LSN (`None` below `base` or at/past head).
    pub fn get(&self, lsn: Lsn) -> Option<&BinlogEvent> {
        let i = lsn.0.checked_sub(self.base)?;
        self.events.get(i as usize)
    }

    /// Events at or after `from` (what a slave I/O thread fetches). A `from`
    /// below `base` returns everything held — truncated history cannot be
    /// served.
    pub fn read_from(&self, from: Lsn) -> &[BinlogEvent] {
        let i = (from.0.saturating_sub(self.base) as usize).min(self.events.len());
        &self.events[i..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows_event() -> BinlogEvent {
        BinlogEvent {
            lsn: Lsn(7),
            commit_ts_micros: 123_456_789,
            payload: EventPayload::Rows {
                changes: vec![
                    RowChange {
                        table: "users".into(),
                        kind: RowChangeKind::Insert {
                            row: vec![
                                Value::Int(1),
                                Value::Text("alice".into()),
                                Value::Null,
                                Value::Double(2.5),
                                Value::Bool(true),
                                Value::Timestamp(99),
                            ],
                        },
                    },
                    RowChange {
                        table: "events".into(),
                        kind: RowChangeKind::Update {
                            before: vec![Value::Int(1)],
                            after: vec![Value::Int(2)],
                        },
                    },
                    RowChange {
                        table: "events".into(),
                        kind: RowChangeKind::Delete {
                            row: vec![Value::Int(2)],
                        },
                    },
                ],
            },
        }
    }

    #[test]
    fn statement_event_round_trips() {
        let ev = BinlogEvent {
            lsn: Lsn(0),
            commit_ts_micros: -5,
            payload: EventPayload::Statement {
                sql: "INSERT INTO heartbeat (id, ts) VALUES (?, NOW_MICROS())".into(),
                params: vec![Value::Int(42)],
            },
        };
        let decoded = BinlogEvent::decode(ev.encode()).unwrap();
        assert_eq!(decoded, ev);
    }

    #[test]
    fn statement_event_with_all_param_types_round_trips() {
        let ev = BinlogEvent {
            lsn: Lsn(3),
            commit_ts_micros: 1,
            payload: EventPayload::Statement {
                sql: "INSERT INTO t VALUES (?, ?, ?, ?, ?, ?)".into(),
                params: vec![
                    Value::Null,
                    Value::Int(-9),
                    Value::Double(2.5),
                    Value::Text("it's".into()),
                    Value::Bool(false),
                    Value::Timestamp(123),
                ],
            },
        };
        assert_eq!(BinlogEvent::decode(ev.encode()).unwrap(), ev);
    }

    #[test]
    fn rows_event_round_trips() {
        let ev = sample_rows_event();
        let decoded = BinlogEvent::decode(ev.encode()).unwrap();
        assert_eq!(decoded, ev);
    }

    #[test]
    fn truncated_event_rejected() {
        let ev = sample_rows_event();
        let full = ev.encode();
        for cut in [0usize, 5, 16, 17, full.len() - 1] {
            let sliced = full.slice(0..cut);
            assert!(
                BinlogEvent::decode(sliced).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn corrupt_tag_rejected() {
        let ev = sample_rows_event();
        let mut raw = ev.encode().to_vec();
        raw[16] = 9; // payload tag
        assert!(matches!(
            BinlogEvent::decode(Bytes::from(raw)),
            Err(SqlError::BinlogCorrupt(_))
        ));
    }

    #[test]
    fn log_append_and_read() {
        let mut log = Binlog::new();
        assert!(log.is_empty());
        let l0 = log.append(
            1,
            EventPayload::Statement {
                sql: "a".into(),
                params: vec![],
            },
        );
        let l1 = log.append(
            2,
            EventPayload::Statement {
                sql: "b".into(),
                params: vec![],
            },
        );
        assert_eq!(l0, Lsn(0));
        assert_eq!(l1, Lsn(1));
        assert_eq!(log.head(), Lsn(2));
        assert_eq!(log.read_from(Lsn(0)).len(), 2);
        assert_eq!(log.read_from(Lsn(1)).len(), 1);
        assert_eq!(log.read_from(Lsn(5)).len(), 0, "past-head read is empty");
        assert_eq!(log.get(Lsn(1)).unwrap().commit_ts_micros, 2);
        assert!(log.get(Lsn(9)).is_none());
    }

    #[test]
    fn log_starting_at_continues_lsn_space() {
        let mut log = Binlog::starting_at(Lsn(10));
        assert_eq!(log.base(), Lsn(10));
        assert_eq!(log.head(), Lsn(10));
        let l = log.append(
            1,
            EventPayload::Statement {
                sql: "a".into(),
                params: vec![],
            },
        );
        assert_eq!(l, Lsn(10));
        assert_eq!(log.head(), Lsn(11));
        assert_eq!(log.get(Lsn(10)).unwrap().lsn, Lsn(10));
        assert!(log.get(Lsn(9)).is_none(), "below base is gone");
        assert!(log.get(Lsn(11)).is_none());
        assert_eq!(log.read_from(Lsn(10)).len(), 1);
        assert_eq!(log.read_from(Lsn(11)).len(), 0);
        assert_eq!(log.read_from(Lsn(0)).len(), 1, "pre-base reads clamp");
    }

    #[test]
    fn encoded_len_matches() {
        let ev = sample_rows_event();
        assert_eq!(ev.encoded_len(), ev.encode().len());
        assert!(ev.encoded_len() > 17);
    }

    #[test]
    fn unicode_sql_survives() {
        let ev = BinlogEvent {
            lsn: Lsn(1),
            commit_ts_micros: 0,
            payload: EventPayload::Statement {
                sql: "INSERT INTO t VALUES ('日本 🚀')".into(),
                params: vec![],
            },
        };
        assert_eq!(BinlogEvent::decode(ev.encode()).unwrap(), ev);
    }
}
