//! Table schemas: columns, primary keys, auto-increment.

use crate::error::SqlError;
use crate::value::DataType;

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
    pub not_null: bool,
    pub primary_key: bool,
    pub auto_increment: bool,
}

impl Column {
    /// Plain nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Self {
            name: name.into(),
            ty,
            not_null: false,
            primary_key: false,
            auto_increment: false,
        }
    }

    /// Mark NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.not_null = true;
        self
    }

    /// Mark PRIMARY KEY (implies NOT NULL).
    pub fn primary_key(mut self) -> Self {
        self.primary_key = true;
        self.not_null = true;
        self
    }

    /// Mark AUTO_INCREMENT (INT or TIMESTAMP primary keys only; validated by
    /// the schema — TIMESTAMP fills store the counter with Timestamp
    /// affinity so reads never surface mixed types).
    pub fn auto_increment(mut self) -> Self {
        self.auto_increment = true;
        self
    }
}

/// A table schema: ordered columns plus derived primary-key info.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Validate and build a schema.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<Self, SqlError> {
        let name = name.into();
        if columns.is_empty() {
            return Err(SqlError::Constraint(format!(
                "table '{name}' must have at least one column"
            )));
        }
        let mut seen = std::collections::HashSet::new();
        let mut pk_count = 0usize;
        for c in &columns {
            if !seen.insert(c.name.to_ascii_lowercase()) {
                return Err(SqlError::Constraint(format!(
                    "duplicate column '{}' in table '{name}'",
                    c.name
                )));
            }
            if c.primary_key {
                pk_count += 1;
            }
            if c.auto_increment
                && (!matches!(c.ty, DataType::Int | DataType::Timestamp) || !c.primary_key)
            {
                return Err(SqlError::Constraint(format!(
                    "AUTO_INCREMENT column '{}' must be an INT or TIMESTAMP primary key",
                    c.name
                )));
            }
        }
        if pk_count > 1 {
            return Err(SqlError::Unsupported(format!(
                "composite primary keys are not supported (table '{name}')"
            )));
        }
        Ok(Self { name, columns })
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The primary-key column index, if any.
    pub fn pk_index(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.primary_key)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<Column> {
        vec![
            Column::new("id", DataType::Int)
                .primary_key()
                .auto_increment(),
            Column::new("name", DataType::Text).not_null(),
            Column::new("score", DataType::Double),
        ]
    }

    #[test]
    fn builds_and_locates_columns() {
        let s = TableSchema::new("t", cols()).unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column_index("NAME"), Some(1));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.pk_index(), Some(0));
    }

    #[test]
    fn primary_key_implies_not_null() {
        let c = Column::new("id", DataType::Int).primary_key();
        assert!(c.not_null);
    }

    #[test]
    fn rejects_duplicate_columns() {
        let err = TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("A", DataType::Text),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Constraint(_)));
    }

    #[test]
    fn rejects_empty_table() {
        assert!(TableSchema::new("t", vec![]).is_err());
    }

    #[test]
    fn rejects_non_int_auto_increment() {
        let err = TableSchema::new(
            "t",
            vec![Column::new("id", DataType::Text)
                .primary_key()
                .auto_increment()],
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Constraint(_)));
    }

    #[test]
    fn rejects_composite_pk() {
        let err = TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int).primary_key(),
                Column::new("b", DataType::Int).primary_key(),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Unsupported(_)));
    }
}
