//! In-memory table storage: a slot-vector row heap with purpose-built
//! primary/secondary indexes.
//!
//! Row ids are dense and monotone, so the row heap is a `Vec<Option<row>>`
//! addressed directly by id — `get`/`insert`/`scan` touch no tree nodes.
//! Row images are `Arc<[Value]>` and the secondary-index set is
//! table-level copy-on-write, so forking an engine off the template (once
//! per replica per grid cell) shares every row and index instead of
//! deep-cloning strings and tree nodes; a fork pays for exactly the rows
//! it later writes. Primary keys on INT or
//! TIMESTAMP columns (every table the Cloudstone workload creates) go
//! through [`IntMap`], a fixed-seed open-addressing `i64 → rid` map whose
//! probe is one multiply, a shift and a compare — no `Value` clone, no
//! canonicalization, no hasher state. Non-integer primary keys and all
//! secondary indexes use ordered `BTreeMap`s keyed by `index_cmp`; those
//! trees are small and cache-hot here, and a general `HashMap`-over-`Value`
//! design measured 35–45% slower end-to-end because per-probe key cloning
//! and multi-word hashing cost more than the whole short B-tree descent.

use crate::error::SqlError;
use crate::schema::TableSchema;
use crate::value::{DataType, Value};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

/// Internal row identifier (stable across updates, unique per table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

/// An index key: a [`Value`] with the total `index_cmp` ordering.
#[derive(Debug, Clone)]
pub struct Key(pub Value);

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.0.index_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.index_cmp(&other.0)
    }
}

/// Sentinel rid marking an empty [`IntMap`] slot (row ids are dense counters
/// and can never reach `u64::MAX`).
const INT_EMPTY: u64 = u64::MAX;

/// Fixed-seed open-addressing map from `i64` primary keys to row ids.
///
/// This is the hot index of the whole simulator: every indexed predicate the
/// Cloudstone workload issues is an equality on an INT/TIMESTAMP primary
/// key. A probe is one Fibonacci multiply, a shift, and a short linear scan
/// over a flat `(key, rid)` slot array. Determinism: the layout depends only
/// on the insert/delete history (fixed multiplier, no per-process seed), so
/// `fork`ed replicas behave identically.
#[derive(Debug, Clone)]
struct IntMap {
    /// `(key, rid)` slots; `rid == INT_EMPTY` marks a free slot. The length
    /// is always a power of two.
    slots: Box<[(i64, u64)]>,
    len: usize,
}

impl IntMap {
    const MIN_CAP: usize = 16;

    fn new() -> Self {
        Self {
            slots: vec![(0, INT_EMPTY); Self::MIN_CAP].into_boxed_slice(),
            len: 0,
        }
    }

    #[inline]
    fn bucket(&self, key: i64) -> usize {
        // Fibonacci hashing, indexing by the multiply's HIGH bits: the low
        // bits of `key * odd` barely scramble `key`'s own low bits, so
        // sequential auto-increment keys would otherwise collide in runs.
        let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.slots.len().trailing_zeros())) as usize
    }

    #[inline]
    fn get(&self, key: i64) -> Option<u64> {
        let mask = self.slots.len() - 1;
        let mut i = self.bucket(key);
        loop {
            let (k, r) = self.slots[i];
            if r == INT_EMPTY {
                return None;
            }
            if k == key {
                return Some(r);
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert `key → rid` if the key is absent; returns `false` (leaving the
    /// map untouched) if the key is already present. One probe both checks
    /// and claims.
    fn try_insert(&mut self, key: i64, rid: u64) -> bool {
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.bucket(key);
        loop {
            let (k, r) = self.slots[i];
            if r == INT_EMPTY {
                self.slots[i] = (key, rid);
                self.len += 1;
                return true;
            }
            if k == key {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    /// Remove `key`, backward-shifting the tail of its probe chain so
    /// lookups never need tombstones.
    fn remove(&mut self, key: i64) -> Option<u64> {
        let mask = self.slots.len() - 1;
        let mut i = self.bucket(key);
        loop {
            let (k, r) = self.slots[i];
            if r == INT_EMPTY {
                return None;
            }
            if k == key {
                let mut free = i;
                let mut j = i;
                loop {
                    j = (j + 1) & mask;
                    let (kj, rj) = self.slots[j];
                    if rj == INT_EMPTY {
                        break;
                    }
                    // Shift `j` into the hole iff the hole does not sit
                    // between the entry's ideal bucket and its current slot
                    // (cyclic-distance comparison).
                    let ideal = self.bucket(kj);
                    if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(free) & mask) {
                        self.slots[free] = (kj, rj);
                        free = j;
                    }
                }
                self.slots[free] = (0, INT_EMPTY);
                self.len -= 1;
                return Some(r);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            vec![(0, INT_EMPTY); doubled].into_boxed_slice(),
        );
        self.len = 0;
        for (k, r) in old.into_vec() {
            if r != INT_EMPTY {
                let claimed = self.try_insert(k, r);
                debug_assert!(claimed, "keys are unique by construction");
            }
        }
    }

    /// Live `(key, rid)` pairs in slot order (NOT key order).
    fn iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.slots
            .iter()
            .filter(|&&(_, r)| r != INT_EMPTY)
            .map(|&(k, r)| (k, r))
    }
}

/// The `i64` an index probe value maps to in an [`IntMap`]-backed index, or
/// `None` when no stored integer key can be `index_cmp`-equal to the probe
/// (fractional doubles, text, NULL, booleans — such probes simply miss).
#[inline]
fn int_key(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) | Value::Timestamp(i) => Some(*i),
        Value::Double(d) => {
            // `i64::MAX as f64` rounds up to 2^63, so the upper comparison
            // is exclusive; `i64::MIN as f64` is exact.
            if d.fract() == 0.0 && *d >= i64::MIN as f64 && *d < i64::MAX as f64 {
                Some(*d as i64)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Primary-key index. Tables whose pk column is INT or TIMESTAMP (all of
/// them, in this workload) use the open-addressing [`IntMap`]; any other pk
/// type — or an integer-keyed table that somehow receives a non-integer key
/// — uses the ordered fallback (see [`Table::degrade_pk`]).
#[derive(Debug, Clone)]
enum PkIndex {
    Ints(IntMap),
    General(BTreeMap<Key, RowId>),
}

impl PkIndex {
    /// Row id stored under a probe value, if any.
    #[inline]
    fn probe(&self, key: &Value) -> Option<RowId> {
        match self {
            PkIndex::Ints(m) => m.get(int_key(key)?).map(RowId),
            PkIndex::General(m) => m.get(&Key(key.clone())).copied(),
        }
    }

    /// Claim `key → rid`; `false` if the key is taken. Callers must route
    /// non-integer keys away from the `Ints` arm first ([`Table::degrade_pk`]).
    fn try_insert(&mut self, key: &Value, rid: RowId) -> bool {
        match self {
            PkIndex::Ints(m) => {
                let k = int_key(key).expect("non-integer pk keys degrade the index first");
                m.try_insert(k, rid.0)
            }
            PkIndex::General(m) => match m.entry(Key(key.clone())) {
                std::collections::btree_map::Entry::Occupied(_) => false,
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(rid);
                    true
                }
            },
        }
    }

    fn remove(&mut self, key: &Value) {
        match self {
            PkIndex::Ints(m) => {
                if let Some(k) = int_key(key) {
                    m.remove(k);
                }
            }
            PkIndex::General(m) => {
                m.remove(&Key(key.clone()));
            }
        }
    }
}

/// A secondary index over one column: an ordered map keyed by `index_cmp`.
/// These trees are small (distinct key counts in the hundreds) and
/// cache-hot; a hashed variant measured slower because per-probe key cloning
/// and hashing cost more than the whole B-tree descent.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    pub name: String,
    pub column: usize,
    pub unique: bool,
    map: BTreeMap<Key, Vec<RowId>>,
}

impl SecondaryIndex {
    fn new(name: String, column: usize, unique: bool) -> Self {
        Self {
            name,
            column,
            unique,
            map: BTreeMap::new(),
        }
    }

    fn insert(&mut self, key: Value, rid: RowId) -> Result<(), SqlError> {
        if self.unique && !key.is_null() {
            if let Some(v) = self.map.get(&Key(key.clone())) {
                if !v.is_empty() {
                    return Err(SqlError::DuplicateKey(format!(
                        "unique index '{}' value {key}",
                        self.name
                    )));
                }
            }
        }
        self.map.entry(Key(key)).or_default().push(rid);
        Ok(())
    }

    fn remove(&mut self, key: &Value, rid: RowId) {
        if let Some(v) = self.map.get_mut(&Key(key.clone())) {
            v.retain(|&r| r != rid);
            if v.is_empty() {
                self.map.remove(&Key(key.clone()));
            }
        }
    }

    /// Row ids with exactly this key value (posting-list order = insertion
    /// order, i.e. ascending row id for rows indexed at backfill).
    pub fn lookup_eq(&self, key: &Value) -> &[RowId] {
        self.map
            .get(&Key(key.clone()))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Row ids within an inclusive/exclusive bound range, in key order.
    pub fn lookup_range(
        &self,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> impl Iterator<Item = RowId> + '_ {
        self.map
            .range((key_bound(lo), key_bound(hi)))
            .flat_map(|(_, rids)| rids.iter().copied())
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[inline]
fn key_bound(b: Bound<&Value>) -> Bound<Key> {
    match b {
        Bound::Included(v) => Bound::Included(Key(v.clone())),
        Bound::Excluded(v) => Bound::Excluded(Key(v.clone())),
        Bound::Unbounded => Bound::Unbounded,
    }
}

#[inline]
fn key_in_bounds(k: &Value, lo: Bound<&Value>, hi: Bound<&Value>) -> bool {
    use std::cmp::Ordering::*;
    let above_lo = match lo {
        Bound::Included(v) => !matches!(k.index_cmp(v), Less),
        Bound::Excluded(v) => matches!(k.index_cmp(v), Greater),
        Bound::Unbounded => true,
    };
    let below_hi = match hi {
        Bound::Included(v) => !matches!(k.index_cmp(v), Greater),
        Bound::Excluded(v) => matches!(k.index_cmp(v), Less),
        Bound::Unbounded => true,
    };
    above_lo && below_hi
}

/// A heap of rows plus indexes, validated against a schema.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    /// Column names shared out to query scopes: schemas are immutable after
    /// creation, so every statement binding this table can hold the same
    /// allocation instead of cloning one `String` per column per statement.
    col_names: std::sync::Arc<[String]>,
    /// Row heap addressed by row id: ids are dense and monotone, so slot `i`
    /// holds row `RowId(i)` (or `None` after a delete — ids are never
    /// reused, keeping scan order stable and fingerprints reproducible).
    /// Images are `Arc`-shared so a forked table clones pointers, not rows.
    rows: Vec<Option<Arc<[Value]>>>,
    /// Live-row count (`rows` minus the `None` slots).
    live: usize,
    next_rowid: u64,
    next_auto_inc: i64,
    /// Unique index over the primary key column, if the schema has one.
    pk: Option<PkIndex>,
    /// Copy-on-write: shared with the fork source until this table's first
    /// index mutation (`Arc::make_mut`), so read-only tables never pay the
    /// tree deep-clone.
    secondary: Arc<Vec<SecondaryIndex>>,
    /// Monotone stamp of the last schema-affecting DDL (table creation,
    /// index creation), assigned by the owning engine. Cached plans record
    /// the stamp of every table they depend on and are revalidated against
    /// it, so DDL invalidates exactly the affected cache entries.
    schema_serial: u64,
    /// Last-writer LSN per row, stamped by the replica row-apply path (the
    /// `is_tuple_visible`-style visibility hook for parallel apply): slot 0
    /// means "written by base load / local execution" and carries version 0.
    /// In-order batch commit keeps each stamp the true last writer;
    /// [`Table::row_visible_at`] then answers "had LSN x been applied, would
    /// this row version be visible?" deterministically regardless of how
    /// many workers raced on the batch.
    versions: Vec<u64>,
    /// Local apply time (µs of simulated time) per row, stamped by the
    /// replica row-apply path alongside `versions`. 0 means "never
    /// row-applied". This is what heartbeat delay measurement reads: under
    /// the row binlog format the shipped row image carries the *master's*
    /// materialized timestamp verbatim, so the slave-side apply instant must
    /// be recorded out of band.
    applied_at: Vec<u64>,
}

impl Table {
    /// Empty table for a schema.
    pub fn new(schema: TableSchema) -> Self {
        let pk = schema.pk_index().map(|i| match schema.columns[i].ty {
            DataType::Int | DataType::Timestamp => PkIndex::Ints(IntMap::new()),
            _ => PkIndex::General(BTreeMap::new()),
        });
        let col_names: std::sync::Arc<[String]> =
            schema.columns.iter().map(|c| c.name.clone()).collect();
        Self {
            schema,
            col_names,
            rows: Vec::new(),
            live: 0,
            next_rowid: 0,
            next_auto_inc: 1,
            pk,
            secondary: Arc::new(Vec::new()),
            schema_serial: 0,
            versions: Vec::new(),
            applied_at: Vec::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Shared column-name list (one allocation for the table's lifetime).
    pub fn col_names(&self) -> std::sync::Arc<[String]> {
        self.col_names.clone()
    }

    /// Stamp of the last schema-affecting DDL on this table.
    pub fn schema_serial(&self) -> u64 {
        self.schema_serial
    }

    /// Record a schema-affecting DDL (called by the engine with its own
    /// monotone DDL counter, so a DROP + re-CREATE never reuses a stamp).
    pub fn set_schema_serial(&mut self, serial: u64) {
        self.schema_serial = serial;
    }

    /// Number of live rows.
    pub fn row_count(&self) -> usize {
        self.live
    }

    /// The next auto-increment value that would be assigned.
    pub fn peek_auto_increment(&self) -> i64 {
        self.next_auto_inc
    }

    /// Add a secondary index over `column`; backfills existing rows.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        column: usize,
        unique: bool,
    ) -> Result<(), SqlError> {
        let name = name.into();
        if self.secondary.iter().any(|ix| ix.name == name) {
            return Err(SqlError::DuplicateIndex(name));
        }
        assert!(column < self.schema.arity(), "index column out of range");
        let mut ix = SecondaryIndex::new(name, column, unique);
        for (rid, row) in self.scan() {
            ix.insert(row[column].clone(), rid)?;
        }
        Arc::make_mut(&mut self.secondary).push(ix);
        Ok(())
    }

    /// Find a secondary index over `column`.
    pub fn index_on(&self, column: usize) -> Option<&SecondaryIndex> {
        self.secondary.iter().find(|ix| ix.column == column)
    }

    /// All secondary indexes.
    pub fn indexes(&self) -> &[SecondaryIndex] {
        &self.secondary
    }

    /// Validate a full-width row against the schema (type coercion and NOT
    /// NULL), returning the coerced row. Auto-increment: a NULL/absent pk on
    /// an auto-increment column is filled from the counter.
    fn validate(&mut self, mut row: Vec<Value>) -> Result<Vec<Value>, SqlError> {
        if row.len() != self.schema.arity() {
            return Err(SqlError::Constraint(format!(
                "row arity {} != table arity {} for '{}'",
                row.len(),
                self.schema.arity(),
                self.schema.name
            )));
        }
        for (i, col) in self.schema.columns.iter().enumerate() {
            let v = std::mem::replace(&mut row[i], Value::Null);
            let mut v = v.coerce_to(col.ty)?;
            if v.is_null() && col.auto_increment {
                // The fill must respect the column's type affinity: a
                // TIMESTAMP auto-increment column stores Timestamp, not the
                // raw counter Int (readers otherwise see mixed types).
                v = Value::Int(self.next_auto_inc).coerce_to(col.ty)?;
            }
            if v.is_null() && col.not_null {
                return Err(SqlError::Constraint(format!(
                    "column '{}' of '{}' is NOT NULL",
                    col.name, self.schema.name
                )));
            }
            row[i] = v;
        }
        // Advance the auto-increment counter past any explicit value.
        if let Some(pk_idx) = self.schema.pk_index() {
            if self.schema.columns[pk_idx].auto_increment {
                if let Value::Int(v) | Value::Timestamp(v) = row[pk_idx] {
                    self.next_auto_inc = self.next_auto_inc.max(v + 1);
                }
            }
        }
        Ok(row)
    }

    /// Store `row` in the slot for `rid`, growing the heap as needed.
    fn put_slot(&mut self, rid: RowId, row: Arc<[Value]>) {
        let i = rid.0 as usize;
        if i >= self.rows.len() {
            self.rows.resize_with(i + 1, || None);
        }
        if self.rows[i].is_none() {
            self.live += 1;
        }
        self.rows[i] = Some(row);
    }

    /// Insert a full-width row; returns its row id.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId, SqlError> {
        let row = self.validate(row)?;
        let rid = RowId(self.next_rowid);

        // Primary key uniqueness: a single probe both checks and claims the
        // slot (the claim is undone below on the rare secondary unique
        // violation, keeping failed inserts free of side effects).
        let pk_idx = self.schema.pk_index();
        if let (Some(PkIndex::Ints(_)), Some(pki)) = (self.pk.as_ref(), pk_idx) {
            if int_key(&row[pki]).is_none() {
                self.degrade_pk();
            }
        }
        let pk_claimed = if let (Some(pk_map), Some(pk_idx)) = (&mut self.pk, pk_idx) {
            if !pk_map.try_insert(&row[pk_idx], rid) {
                return Err(SqlError::DuplicateKey(format!(
                    "primary key {} in '{}'",
                    row[pk_idx], self.schema.name
                )));
            }
            true
        } else {
            false
        };
        // Secondary unique checks before any index mutation.
        for ix in self.secondary.iter() {
            if ix.unique && !row[ix.column].is_null() && !ix.lookup_eq(&row[ix.column]).is_empty() {
                if pk_claimed {
                    if let (Some(pk_map), Some(pk_idx)) = (&mut self.pk, pk_idx) {
                        pk_map.remove(&row[pk_idx]);
                    }
                }
                return Err(SqlError::DuplicateKey(format!(
                    "unique index '{}' value {}",
                    ix.name, row[ix.column]
                )));
            }
        }

        self.next_rowid += 1;
        for ix in Arc::make_mut(&mut self.secondary) {
            ix.insert(row[ix.column].clone(), rid)
                .expect("uniqueness pre-checked");
        }
        self.put_slot(rid, Arc::from(row));
        Ok(rid)
    }

    /// Fetch a row by id.
    #[inline]
    pub fn get(&self, rid: RowId) -> Option<&[Value]> {
        match self.rows.get(rid.0 as usize)? {
            Some(row) => Some(row),
            None => None,
        }
    }

    /// Replace a row in place (same id). Returns the old image (shared, not
    /// cloned — undo logs hold it for free).
    pub fn update(&mut self, rid: RowId, new_row: Vec<Value>) -> Result<Arc<[Value]>, SqlError> {
        let new_row = self.validate(new_row)?;
        // All fallible checks run against the *borrowed* old row; only once
        // they pass is the old image moved out of its slot, so the common
        // path never clones a row.
        {
            let old = self
                .rows
                .get(rid.0 as usize)
                .and_then(Option::as_ref)
                .ok_or_else(|| SqlError::Constraint(format!("no row {rid:?}")))?;
            if let Some(pk_idx) = self.schema.pk_index() {
                if old[pk_idx] != new_row[pk_idx] {
                    let pk_map = self.pk.as_ref().expect("pk map exists");
                    if pk_map.probe(&new_row[pk_idx]).is_some() {
                        return Err(SqlError::DuplicateKey(format!(
                            "primary key {} in '{}'",
                            new_row[pk_idx], self.schema.name
                        )));
                    }
                }
            }
            for ix in self.secondary.iter() {
                if ix.unique
                    && old[ix.column] != new_row[ix.column]
                    && !new_row[ix.column].is_null()
                    && !ix.lookup_eq(&new_row[ix.column]).is_empty()
                {
                    return Err(SqlError::DuplicateKey(format!(
                        "unique index '{}' value {}",
                        ix.name, new_row[ix.column]
                    )));
                }
            }
        }

        // Degrade (cold, at most once per table) before the old image is
        // detached: the rebuild scans the row heap.
        if let Some(pk_idx) = self.schema.pk_index() {
            if matches!(self.pk, Some(PkIndex::Ints(_))) && int_key(&new_row[pk_idx]).is_none() {
                self.degrade_pk();
            }
        }
        let old = self.rows[rid.0 as usize].take().expect("checked above");
        if let (Some(pk_map), Some(pk_idx)) = (&mut self.pk, self.schema.pk_index()) {
            if old[pk_idx] != new_row[pk_idx] {
                pk_map.remove(&old[pk_idx]);
                let claimed = pk_map.try_insert(&new_row[pk_idx], rid);
                debug_assert!(claimed, "uniqueness pre-checked");
            }
        }
        for ix in Arc::make_mut(&mut self.secondary) {
            ix.remove(&old[ix.column], rid);
            ix.insert(new_row[ix.column].clone(), rid)
                .expect("uniqueness pre-checked");
        }
        // The slot stayed logically occupied throughout, so `live` is
        // untouched (`put_slot` would miscount the momentarily-empty slot).
        self.rows[rid.0 as usize] = Some(Arc::from(new_row));
        Ok(old)
    }

    /// Stamp a row's last-writer LSN (replica row-apply path).
    pub fn stamp_version(&mut self, rid: RowId, lsn: u64) {
        let i = rid.0 as usize;
        if i >= self.versions.len() {
            self.versions.resize(i + 1, 0);
        }
        self.versions[i] = lsn;
    }

    /// Last-writer LSN of a row: 0 for rows never touched by row apply
    /// (base-load data), `None` when the row does not exist.
    pub fn row_version(&self, rid: RowId) -> Option<u64> {
        self.get(rid)?;
        Some(self.versions.get(rid.0 as usize).copied().unwrap_or(0))
    }

    /// Stamp the local apply instant (µs simulated time) of a row-applied
    /// write — read back by heartbeat delay measurement, where the stored
    /// row carries the *master's* timestamp.
    pub fn stamp_applied_at(&mut self, rid: RowId, at_micros: u64) {
        let i = rid.0 as usize;
        if i >= self.applied_at.len() {
            self.applied_at.resize(i + 1, 0);
        }
        self.applied_at[i] = at_micros;
    }

    /// Local apply instant of a row, if it was written through the row-apply
    /// path (`None` for base-load / locally-executed rows).
    pub fn applied_at_of(&self, rid: RowId) -> Option<u64> {
        self.get(rid)?;
        match self.applied_at.get(rid.0 as usize).copied().unwrap_or(0) {
            0 => None,
            at => Some(at),
        }
    }

    /// Would this row version be visible to a reader positioned at
    /// `applied_lsn`? True iff its last writer committed at or before that
    /// LSN — the deterministic visibility rule parallel apply relies on.
    pub fn row_visible_at(&self, rid: RowId, applied_lsn: u64) -> bool {
        match self.row_version(rid) {
            Some(v) => v <= applied_lsn,
            None => false,
        }
    }

    /// Highest last-writer LSN stamped on any live row.
    pub fn max_row_version(&self) -> u64 {
        self.versions
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.rows.get(i).map(Option::is_some).unwrap_or(false))
            .map(|(_, &v)| v)
            .max()
            .unwrap_or(0)
    }

    /// Delete a row by id; returns the deleted image (shared, not cloned).
    pub fn delete(&mut self, rid: RowId) -> Option<Arc<[Value]>> {
        let i = rid.0 as usize;
        let row = self.rows.get_mut(i)?.take()?;
        self.live -= 1;
        if i < self.versions.len() {
            self.versions[i] = 0;
        }
        if i < self.applied_at.len() {
            self.applied_at[i] = 0;
        }
        if let (Some(pk_map), Some(pk_idx)) = (&mut self.pk, self.schema.pk_index()) {
            pk_map.remove(&row[pk_idx]);
        }
        for ix in Arc::make_mut(&mut self.secondary) {
            ix.remove(&row[ix.column], rid);
        }
        Some(row)
    }

    /// Re-insert a row under a specific id (used by transaction rollback;
    /// the row must have been previously validated by this table).
    pub fn restore(&mut self, rid: RowId, row: Arc<[Value]>) {
        if let (Some(PkIndex::Ints(_)), Some(pk_idx)) = (self.pk.as_ref(), self.schema.pk_index()) {
            if int_key(&row[pk_idx]).is_none() {
                self.degrade_pk();
            }
        }
        if let (Some(pk_map), Some(pk_idx)) = (&mut self.pk, self.schema.pk_index()) {
            let _ = pk_map.try_insert(&row[pk_idx], rid);
        }
        for ix in Arc::make_mut(&mut self.secondary) {
            let _ = ix.insert(row[ix.column].clone(), rid);
        }
        self.put_slot(rid, row);
        self.next_rowid = self.next_rowid.max(rid.0 + 1);
    }

    /// Iterate all `(rid, row)` pairs in row-id order.
    pub fn scan(&self) -> ScanIter<'_> {
        ScanIter {
            inner: self.rows.iter().enumerate(),
        }
    }

    /// Concretely-typed variant of [`Table::scan`] for the executor's scan
    /// fast path, which must name the iterator type to store it in an enum.
    pub(crate) fn scan_pairs(&self) -> ScanIter<'_> {
        self.scan()
    }

    /// Look up row ids by primary key.
    #[inline]
    pub fn pk_lookup(&self, key: &Value) -> Option<RowId> {
        self.pk.as_ref()?.probe(key)
    }

    /// Look up row ids by primary key range, in key order. The `IntMap` arm
    /// collects and sorts on demand — the workload's indexed predicates are
    /// all equalities, so pk ranges are off the hot path by construction.
    pub fn pk_range(
        &self,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Option<std::vec::IntoIter<RowId>> {
        let ids: Vec<RowId> = match self.pk.as_ref()? {
            PkIndex::Ints(m) => {
                let mut hits: Vec<(i64, u64)> = m
                    .iter()
                    .filter(|&(k, _)| key_in_bounds(&Value::Int(k), lo, hi))
                    .collect();
                hits.sort_unstable_by_key(|&(k, _)| k);
                hits.into_iter().map(|(_, r)| RowId(r)).collect()
            }
            PkIndex::General(m) => m
                .range((key_bound(lo), key_bound(hi)))
                .map(|(_, &rid)| rid)
                .collect(),
        };
        Some(ids.into_iter())
    }

    /// Rebuild the pk index as the ordered fallback. Cold and at most once
    /// per table: reached only if a non-integer key arrives at an
    /// `IntMap`-backed index, which `validate`'s column-type coercion makes
    /// unreachable for the workload's schemas.
    fn degrade_pk(&mut self) {
        let pk_idx = self.schema.pk_index().expect("degrade implies a pk");
        let mut m = BTreeMap::new();
        for (i, slot) in self.rows.iter().enumerate() {
            if let Some(row) = slot {
                m.insert(Key(row[pk_idx].clone()), RowId(i as u64));
            }
        }
        self.pk = Some(PkIndex::General(m));
    }
}

/// Row-id-order iterator over the live rows of a [`Table`].
pub struct ScanIter<'t> {
    inner: std::iter::Enumerate<std::slice::Iter<'t, Option<Arc<[Value]>>>>,
}

impl<'t> Iterator for ScanIter<'t> {
    type Item = (RowId, &'t [Value]);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        for (i, slot) in self.inner.by_ref() {
            if let Some(row) = slot {
                return Some((RowId(i as u64), row));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = TableSchema::new(
            "users",
            vec![
                Column::new("id", DataType::Int)
                    .primary_key()
                    .auto_increment(),
                Column::new("name", DataType::Text).not_null(),
                Column::new("score", DataType::Double),
            ],
        )
        .unwrap();
        Table::new(schema)
    }

    fn row(id: Option<i64>, name: &str, score: f64) -> Vec<Value> {
        vec![
            id.map(Value::Int).unwrap_or(Value::Null),
            Value::Text(name.into()),
            Value::Double(score),
        ]
    }

    #[test]
    fn insert_get_scan() {
        let mut t = table();
        let r1 = t.insert(row(Some(1), "alice", 1.0)).unwrap();
        let r2 = t.insert(row(Some(2), "bob", 2.0)).unwrap();
        assert_ne!(r1, r2);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.get(r1).unwrap()[1], Value::Text("alice".into()));
        let all: Vec<_> = t.scan().collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn auto_increment_fills_null_pk() {
        let mut t = table();
        let r1 = t.insert(row(None, "a", 0.0)).unwrap();
        assert_eq!(t.get(r1).unwrap()[0], Value::Int(1));
        // explicit id advances counter
        t.insert(row(Some(10), "b", 0.0)).unwrap();
        let r3 = t.insert(row(None, "c", 0.0)).unwrap();
        assert_eq!(t.get(r3).unwrap()[0], Value::Int(11));
    }

    #[test]
    fn pk_duplicate_rejected() {
        let mut t = table();
        t.insert(row(Some(1), "a", 0.0)).unwrap();
        let err = t.insert(row(Some(1), "b", 0.0)).unwrap_err();
        assert!(matches!(err, SqlError::DuplicateKey(_)));
        assert_eq!(t.row_count(), 1, "failed insert left no trace");
    }

    #[test]
    fn not_null_enforced() {
        let mut t = table();
        let err = t
            .insert(vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap_err();
        assert!(matches!(err, SqlError::Constraint(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = table();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn type_coercion_on_insert() {
        let mut t = table();
        let rid = t
            .insert(vec![Value::Int(1), Value::Text("a".into()), Value::Int(3)])
            .unwrap();
        assert_eq!(t.get(rid).unwrap()[2], Value::Double(3.0));
    }

    #[test]
    fn pk_lookup_and_range() {
        let mut t = table();
        for i in 1..=10 {
            t.insert(row(Some(i), "u", i as f64)).unwrap();
        }
        let rid = t.pk_lookup(&Value::Int(7)).unwrap();
        assert_eq!(t.get(rid).unwrap()[0], Value::Int(7));
        assert!(t.pk_lookup(&Value::Int(99)).is_none());
        let ids: Vec<i64> = t
            .pk_range(
                Bound::Included(&Value::Int(3)),
                Bound::Excluded(&Value::Int(6)),
            )
            .unwrap()
            .map(|rid| match t.get(rid).unwrap()[0] {
                Value::Int(i) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn cross_type_numeric_keys_probe_equal() {
        // Int-keyed pk probed with Double and Timestamp representations of
        // the same number must hit (index_cmp calls them equal, so the
        // IntMap probe conversion must agree).
        let mut t = table();
        t.insert(row(Some(7), "u", 0.0)).unwrap();
        assert!(t.pk_lookup(&Value::Int(7)).is_some());
        assert!(t.pk_lookup(&Value::Double(7.0)).is_some());
        assert!(t.pk_lookup(&Value::Timestamp(7)).is_some());
        assert!(t.pk_lookup(&Value::Double(7.5)).is_none());
        assert!(t.pk_lookup(&Value::Double(-0.0)).is_none());
    }

    #[test]
    fn secondary_index_tracks_updates_and_deletes() {
        let mut t = table();
        t.create_index("idx_name", 1, false).unwrap();
        let r1 = t.insert(row(Some(1), "alice", 0.0)).unwrap();
        let r2 = t.insert(row(Some(2), "alice", 0.0)).unwrap();
        let ix = t.index_on(1).unwrap();
        assert_eq!(ix.lookup_eq(&Value::Text("alice".into())).len(), 2);

        t.update(r1, row(Some(1), "carol", 0.0)).unwrap();
        let ix = t.index_on(1).unwrap();
        assert_eq!(ix.lookup_eq(&Value::Text("alice".into())), &[r2]);
        assert_eq!(ix.lookup_eq(&Value::Text("carol".into())), &[r1]);

        t.delete(r2).unwrap();
        let ix = t.index_on(1).unwrap();
        assert!(ix.lookup_eq(&Value::Text("alice".into())).is_empty());
    }

    #[test]
    fn unique_secondary_index_enforced() {
        let mut t = table();
        t.create_index("uq_name", 1, true).unwrap();
        t.insert(row(Some(1), "alice", 0.0)).unwrap();
        let err = t.insert(row(Some(2), "alice", 0.0)).unwrap_err();
        assert!(matches!(err, SqlError::DuplicateKey(_)));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn create_index_backfills_and_rejects_duplicate_name() {
        let mut t = table();
        t.insert(row(Some(1), "a", 0.0)).unwrap();
        t.insert(row(Some(2), "b", 0.0)).unwrap();
        t.create_index("idx", 1, false).unwrap();
        assert_eq!(t.index_on(1).unwrap().distinct_keys(), 2);
        assert!(matches!(
            t.create_index("idx", 2, false),
            Err(SqlError::DuplicateIndex(_))
        ));
    }

    #[test]
    fn secondary_range_scan_sorted() {
        let mut t = table();
        t.create_index("idx_name", 1, false).unwrap();
        for (i, name) in ["delta", "alpha", "carol", "bravo"].iter().enumerate() {
            t.insert(row(Some(i as i64 + 1), name, 0.0)).unwrap();
        }
        let ix = t.index_on(1).unwrap();
        let names: Vec<String> = ix
            .lookup_range(
                Bound::Included(&Value::Text("alpha".into())),
                Bound::Excluded(&Value::Text("delta".into())),
            )
            .map(|rid| match &t.get(rid).unwrap()[1] {
                Value::Text(s) => s.clone(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(names, vec!["alpha", "bravo", "carol"], "key order");
    }

    #[test]
    fn update_pk_change_checked() {
        let mut t = table();
        t.insert(row(Some(1), "a", 0.0)).unwrap();
        let r2 = t.insert(row(Some(2), "b", 0.0)).unwrap();
        let err = t.update(r2, row(Some(1), "b", 0.0)).unwrap_err();
        assert!(matches!(err, SqlError::DuplicateKey(_)));
        // Legal pk move works.
        t.update(r2, row(Some(3), "b", 0.0)).unwrap();
        assert!(t.pk_lookup(&Value::Int(2)).is_none());
        assert!(t.pk_lookup(&Value::Int(3)).is_some());
    }

    #[test]
    fn timestamp_auto_increment_respects_type_affinity() {
        // The auto-increment fill used to store the raw counter Int even in
        // a TIMESTAMP column, so reads surfaced mixed types.
        let schema = TableSchema::new(
            "log",
            vec![
                Column::new("ts", DataType::Timestamp)
                    .primary_key()
                    .auto_increment(),
                Column::new("msg", DataType::Text),
            ],
        )
        .unwrap();
        let mut t = Table::new(schema);
        let r1 = t
            .insert(vec![Value::Null, Value::Text("a".into())])
            .unwrap();
        assert_eq!(t.get(r1).unwrap()[0], Value::Timestamp(1));
        // Explicit values still advance the counter.
        t.insert(vec![Value::Int(10), Value::Text("b".into())])
            .unwrap();
        let r3 = t
            .insert(vec![Value::Null, Value::Text("c".into())])
            .unwrap();
        assert_eq!(t.get(r3).unwrap()[0], Value::Timestamp(11));
    }

    #[test]
    fn schema_serial_set_and_read() {
        let mut t = table();
        assert_eq!(t.schema_serial(), 0);
        t.set_schema_serial(7);
        assert_eq!(t.schema_serial(), 7);
        assert_eq!(t.clone().schema_serial(), 7, "serial survives fork clones");
    }

    #[test]
    fn restore_round_trips_delete() {
        let mut t = table();
        let rid = t.insert(row(Some(1), "a", 0.5)).unwrap();
        let old = t.delete(rid).unwrap();
        assert_eq!(t.row_count(), 0);
        t.restore(rid, old);
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.pk_lookup(&Value::Int(1)), Some(rid));
    }

    #[test]
    fn intmap_matches_btreemap_model() {
        let mut m = IntMap::new();
        let mut model: BTreeMap<i64, u64> = BTreeMap::new();
        // A deterministic LCG drives a mixed insert/remove workload over a
        // small key range to force collisions, growth and chain shifts.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for step in 0..20_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = ((state >> 33) % 512) as i64 - 256;
            if state & 1 == 0 {
                let inserted = m.try_insert(key, step);
                assert_eq!(inserted, !model.contains_key(&key), "step {step} key {key}");
                if inserted {
                    model.insert(key, step);
                }
            } else {
                assert_eq!(m.remove(key), model.remove(&key), "step {step} key {key}");
            }
            assert_eq!(m.len, model.len());
        }
        for (&k, &v) in &model {
            assert_eq!(m.get(k), Some(v), "key {k}");
        }
        assert_eq!(m.get(9_999), None);
    }

    #[test]
    fn intmap_sequential_keys_survive_backward_shift_deletion() {
        // Sequential auto-increment keys are the common case; deleting every
        // other one exercises the backward-shift chains repeatedly.
        let mut m = IntMap::new();
        for k in 0..1000 {
            assert!(m.try_insert(k, k as u64));
        }
        assert!(!m.try_insert(500, 7), "duplicate claim must fail");
        for k in (0..1000).step_by(2) {
            assert_eq!(m.remove(k), Some(k as u64));
        }
        for k in 0..1000 {
            let expect = if k % 2 == 0 { None } else { Some(k as u64) };
            assert_eq!(m.get(k), expect, "key {k}");
        }
        assert_eq!(m.remove(1), Some(1));
        assert_eq!(m.remove(1), None);
    }

    #[test]
    fn text_pk_uses_ordered_fallback() {
        let schema = TableSchema::new(
            "kv",
            vec![
                Column::new("k", DataType::Text).primary_key(),
                Column::new("v", DataType::Int),
            ],
        )
        .unwrap();
        let mut t = Table::new(schema);
        for (k, v) in [("b", 2), ("a", 1), ("c", 3)] {
            t.insert(vec![Value::Text(k.into()), Value::Int(v)])
                .unwrap();
        }
        let err = t
            .insert(vec![Value::Text("a".into()), Value::Int(9)])
            .unwrap_err();
        assert!(matches!(err, SqlError::DuplicateKey(_)));
        let rid = t.pk_lookup(&Value::Text("b".into())).unwrap();
        assert_eq!(t.get(rid).unwrap()[1], Value::Int(2));
        let keys: Vec<String> = t
            .pk_range(Bound::Unbounded, Bound::Excluded(&Value::Text("c".into())))
            .unwrap()
            .map(|rid| match &t.get(rid).unwrap()[0] {
                Value::Text(s) => s.clone(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(keys, vec!["a", "b"], "range in key order");
    }

    #[test]
    fn applied_at_stamps_follow_row_lifecycle() {
        let mut t = table();
        let rid = t.insert(row(Some(1), "a", 0.0)).unwrap();
        assert_eq!(t.applied_at_of(rid), None, "local insert is unstamped");
        t.stamp_applied_at(rid, 123_456);
        assert_eq!(t.applied_at_of(rid), Some(123_456));
        t.delete(rid);
        assert_eq!(t.applied_at_of(rid), None, "stamp dies with the row");
    }
}
