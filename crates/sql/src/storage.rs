//! In-memory table storage with primary and secondary B-tree indexes.

use crate::error::SqlError;
use crate::schema::TableSchema;
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Internal row identifier (stable across updates, unique per table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

/// An index key: a [`Value`] with the total `index_cmp` ordering.
#[derive(Debug, Clone)]
pub struct Key(pub Value);

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.0.index_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.index_cmp(&other.0)
    }
}

/// A secondary index over one column.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    pub name: String,
    pub column: usize,
    pub unique: bool,
    map: BTreeMap<Key, Vec<RowId>>,
}

impl SecondaryIndex {
    fn new(name: String, column: usize, unique: bool) -> Self {
        Self {
            name,
            column,
            unique,
            map: BTreeMap::new(),
        }
    }

    fn insert(&mut self, key: Value, rid: RowId) -> Result<(), SqlError> {
        let entry = self.map.entry(Key(key.clone())).or_default();
        if self.unique && !entry.is_empty() && !key.is_null() {
            return Err(SqlError::DuplicateKey(format!(
                "unique index '{}' value {key}",
                self.name
            )));
        }
        entry.push(rid);
        Ok(())
    }

    fn remove(&mut self, key: &Value, rid: RowId) {
        if let Some(v) = self.map.get_mut(&Key(key.clone())) {
            v.retain(|&r| r != rid);
            if v.is_empty() {
                self.map.remove(&Key(key.clone()));
            }
        }
    }

    /// Row ids with exactly this key value.
    pub fn lookup_eq(&self, key: &Value) -> &[RowId] {
        self.map
            .get(&Key(key.clone()))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Row ids within an inclusive/exclusive bound range.
    pub fn lookup_range(
        &self,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> impl Iterator<Item = RowId> + '_ {
        let conv = |b: Bound<&Value>| match b {
            Bound::Included(v) => Bound::Included(Key(v.clone())),
            Bound::Excluded(v) => Bound::Excluded(Key(v.clone())),
            Bound::Unbounded => Bound::Unbounded,
        };
        self.map
            .range((conv(lo), conv(hi)))
            .flat_map(|(_, rids)| rids.iter().copied())
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// A heap of rows plus indexes, validated against a schema.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: BTreeMap<RowId, Vec<Value>>,
    next_rowid: u64,
    next_auto_inc: i64,
    /// Unique index over the primary key column, if the schema has one.
    pk: Option<BTreeMap<Key, RowId>>,
    secondary: Vec<SecondaryIndex>,
    /// Monotone stamp of the last schema-affecting DDL (table creation,
    /// index creation), assigned by the owning engine. Cached plans record
    /// the stamp of every table they depend on and are revalidated against
    /// it, so DDL invalidates exactly the affected cache entries.
    schema_serial: u64,
    /// Last-writer LSN per row, stamped by the replica row-apply path (the
    /// `is_tuple_visible`-style visibility hook for parallel apply): a row
    /// absent from the map was written by the base load / local execution
    /// and carries version 0. In-order batch commit keeps each stamp the
    /// true last writer; [`Table::row_visible_at`] then answers "had LSN x
    /// been applied, would this row version be visible?" deterministically
    /// regardless of how many workers raced on the batch.
    versions: BTreeMap<RowId, u64>,
}

impl Table {
    /// Empty table for a schema.
    pub fn new(schema: TableSchema) -> Self {
        let pk = schema.pk_index().map(|_| BTreeMap::new());
        Self {
            schema,
            rows: BTreeMap::new(),
            next_rowid: 0,
            next_auto_inc: 1,
            pk,
            secondary: Vec::new(),
            schema_serial: 0,
            versions: BTreeMap::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Stamp of the last schema-affecting DDL on this table.
    pub fn schema_serial(&self) -> u64 {
        self.schema_serial
    }

    /// Record a schema-affecting DDL (called by the engine with its own
    /// monotone DDL counter, so a DROP + re-CREATE never reuses a stamp).
    pub fn set_schema_serial(&mut self, serial: u64) {
        self.schema_serial = serial;
    }

    /// Number of live rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The next auto-increment value that would be assigned.
    pub fn peek_auto_increment(&self) -> i64 {
        self.next_auto_inc
    }

    /// Add a secondary index over `column`; backfills existing rows.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        column: usize,
        unique: bool,
    ) -> Result<(), SqlError> {
        let name = name.into();
        if self.secondary.iter().any(|ix| ix.name == name) {
            return Err(SqlError::DuplicateIndex(name));
        }
        assert!(column < self.schema.arity(), "index column out of range");
        let mut ix = SecondaryIndex::new(name, column, unique);
        for (&rid, row) in &self.rows {
            ix.insert(row[column].clone(), rid)?;
        }
        self.secondary.push(ix);
        Ok(())
    }

    /// Find a secondary index over `column`.
    pub fn index_on(&self, column: usize) -> Option<&SecondaryIndex> {
        self.secondary.iter().find(|ix| ix.column == column)
    }

    /// All secondary indexes.
    pub fn indexes(&self) -> &[SecondaryIndex] {
        &self.secondary
    }

    /// Validate a full-width row against the schema (type coercion and NOT
    /// NULL), returning the coerced row. Auto-increment: a NULL/absent pk on
    /// an auto-increment column is filled from the counter.
    fn validate(&mut self, mut row: Vec<Value>) -> Result<Vec<Value>, SqlError> {
        if row.len() != self.schema.arity() {
            return Err(SqlError::Constraint(format!(
                "row arity {} != table arity {} for '{}'",
                row.len(),
                self.schema.arity(),
                self.schema.name
            )));
        }
        for (i, col) in self.schema.columns.iter().enumerate() {
            let v = std::mem::replace(&mut row[i], Value::Null);
            let mut v = v.coerce_to(col.ty)?;
            if v.is_null() && col.auto_increment {
                // The fill must respect the column's type affinity: a
                // TIMESTAMP auto-increment column stores Timestamp, not the
                // raw counter Int (readers otherwise see mixed types).
                v = Value::Int(self.next_auto_inc).coerce_to(col.ty)?;
            }
            if v.is_null() && col.not_null {
                return Err(SqlError::Constraint(format!(
                    "column '{}' of '{}' is NOT NULL",
                    col.name, self.schema.name
                )));
            }
            row[i] = v;
        }
        // Advance the auto-increment counter past any explicit value.
        if let Some(pk_idx) = self.schema.pk_index() {
            if self.schema.columns[pk_idx].auto_increment {
                if let Value::Int(v) | Value::Timestamp(v) = row[pk_idx] {
                    self.next_auto_inc = self.next_auto_inc.max(v + 1);
                }
            }
        }
        Ok(row)
    }

    /// Insert a full-width row; returns its row id.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId, SqlError> {
        let row = self.validate(row)?;
        let rid = RowId(self.next_rowid);

        // Primary key uniqueness.
        if let (Some(pk_map), Some(pk_idx)) = (&self.pk, self.schema.pk_index()) {
            let key = Key(row[pk_idx].clone());
            if pk_map.contains_key(&key) {
                return Err(SqlError::DuplicateKey(format!(
                    "primary key {} in '{}'",
                    row[pk_idx], self.schema.name
                )));
            }
        }
        // Secondary unique checks before any mutation.
        for ix in &self.secondary {
            if ix.unique && !row[ix.column].is_null() && !ix.lookup_eq(&row[ix.column]).is_empty() {
                return Err(SqlError::DuplicateKey(format!(
                    "unique index '{}' value {}",
                    ix.name, row[ix.column]
                )));
            }
        }

        self.next_rowid += 1;
        if let (Some(pk_map), Some(pk_idx)) = (&mut self.pk, self.schema.pk_index()) {
            pk_map.insert(Key(row[pk_idx].clone()), rid);
        }
        for ix in &mut self.secondary {
            ix.insert(row[ix.column].clone(), rid)
                .expect("uniqueness pre-checked");
        }
        self.rows.insert(rid, row);
        Ok(rid)
    }

    /// Fetch a row by id.
    pub fn get(&self, rid: RowId) -> Option<&Vec<Value>> {
        self.rows.get(&rid)
    }

    /// Replace a row in place (same id). Returns the old row.
    pub fn update(&mut self, rid: RowId, new_row: Vec<Value>) -> Result<Vec<Value>, SqlError> {
        let new_row = self.validate(new_row)?;
        let old = self
            .rows
            .get(&rid)
            .cloned()
            .ok_or_else(|| SqlError::Constraint(format!("no row {rid:?}")))?;

        if let Some(pk_idx) = self.schema.pk_index() {
            if old[pk_idx] != new_row[pk_idx] {
                let pk_map = self.pk.as_ref().expect("pk map exists");
                if pk_map.contains_key(&Key(new_row[pk_idx].clone())) {
                    return Err(SqlError::DuplicateKey(format!(
                        "primary key {} in '{}'",
                        new_row[pk_idx], self.schema.name
                    )));
                }
            }
        }
        for ix in &self.secondary {
            if ix.unique
                && old[ix.column] != new_row[ix.column]
                && !new_row[ix.column].is_null()
                && !ix.lookup_eq(&new_row[ix.column]).is_empty()
            {
                return Err(SqlError::DuplicateKey(format!(
                    "unique index '{}' value {}",
                    ix.name, new_row[ix.column]
                )));
            }
        }

        if let (Some(pk_map), Some(pk_idx)) = (&mut self.pk, self.schema.pk_index()) {
            pk_map.remove(&Key(old[pk_idx].clone()));
            pk_map.insert(Key(new_row[pk_idx].clone()), rid);
        }
        for ix in &mut self.secondary {
            ix.remove(&old[ix.column], rid);
            ix.insert(new_row[ix.column].clone(), rid)
                .expect("uniqueness pre-checked");
        }
        self.rows.insert(rid, new_row);
        Ok(old)
    }

    /// Stamp a row's last-writer LSN (replica row-apply path).
    pub fn stamp_version(&mut self, rid: RowId, lsn: u64) {
        self.versions.insert(rid, lsn);
    }

    /// Last-writer LSN of a row: 0 for rows never touched by row apply
    /// (base-load data), `None` when the row does not exist.
    pub fn row_version(&self, rid: RowId) -> Option<u64> {
        if !self.rows.contains_key(&rid) {
            return None;
        }
        Some(self.versions.get(&rid).copied().unwrap_or(0))
    }

    /// Would this row version be visible to a reader positioned at
    /// `applied_lsn`? True iff its last writer committed at or before that
    /// LSN — the deterministic visibility rule parallel apply relies on.
    pub fn row_visible_at(&self, rid: RowId, applied_lsn: u64) -> bool {
        match self.row_version(rid) {
            Some(v) => v <= applied_lsn,
            None => false,
        }
    }

    /// Highest last-writer LSN stamped on any live row.
    pub fn max_row_version(&self) -> u64 {
        self.versions.values().copied().max().unwrap_or(0)
    }

    /// Delete a row by id; returns the deleted row.
    pub fn delete(&mut self, rid: RowId) -> Option<Vec<Value>> {
        let row = self.rows.remove(&rid)?;
        self.versions.remove(&rid);
        if let (Some(pk_map), Some(pk_idx)) = (&mut self.pk, self.schema.pk_index()) {
            pk_map.remove(&Key(row[pk_idx].clone()));
        }
        for ix in &mut self.secondary {
            ix.remove(&row[ix.column], rid);
        }
        Some(row)
    }

    /// Re-insert a row under a specific id (used by transaction rollback;
    /// the row must have been previously validated by this table).
    pub fn restore(&mut self, rid: RowId, row: Vec<Value>) {
        if let (Some(pk_map), Some(pk_idx)) = (&mut self.pk, self.schema.pk_index()) {
            pk_map.insert(Key(row[pk_idx].clone()), rid);
        }
        for ix in &mut self.secondary {
            let _ = ix.insert(row[ix.column].clone(), rid);
        }
        self.rows.insert(rid, row);
        self.next_rowid = self.next_rowid.max(rid.0 + 1);
    }

    /// Iterate all `(rid, row)` pairs in row-id order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Vec<Value>)> + '_ {
        self.rows.iter().map(|(&rid, row)| (rid, row))
    }

    /// Concretely-typed variant of [`Table::scan`] for the executor's scan
    /// fast path, which must name the iterator type to store it in an enum.
    pub(crate) fn scan_pairs(&self) -> std::collections::btree_map::Iter<'_, RowId, Vec<Value>> {
        self.rows.iter()
    }

    /// Look up row ids by primary key.
    pub fn pk_lookup(&self, key: &Value) -> Option<RowId> {
        self.pk.as_ref()?.get(&Key(key.clone())).copied()
    }

    /// Look up row ids by primary key range.
    pub fn pk_range(
        &self,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Option<impl Iterator<Item = RowId> + '_> {
        let pk = self.pk.as_ref()?;
        let conv = |b: Bound<&Value>| match b {
            Bound::Included(v) => Bound::Included(Key(v.clone())),
            Bound::Excluded(v) => Bound::Excluded(Key(v.clone())),
            Bound::Unbounded => Bound::Unbounded,
        };
        Some(pk.range((conv(lo), conv(hi))).map(|(_, &rid)| rid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = TableSchema::new(
            "users",
            vec![
                Column::new("id", DataType::Int)
                    .primary_key()
                    .auto_increment(),
                Column::new("name", DataType::Text).not_null(),
                Column::new("score", DataType::Double),
            ],
        )
        .unwrap();
        Table::new(schema)
    }

    fn row(id: Option<i64>, name: &str, score: f64) -> Vec<Value> {
        vec![
            id.map(Value::Int).unwrap_or(Value::Null),
            Value::Text(name.into()),
            Value::Double(score),
        ]
    }

    #[test]
    fn insert_get_scan() {
        let mut t = table();
        let r1 = t.insert(row(Some(1), "alice", 1.0)).unwrap();
        let r2 = t.insert(row(Some(2), "bob", 2.0)).unwrap();
        assert_ne!(r1, r2);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.get(r1).unwrap()[1], Value::Text("alice".into()));
        let all: Vec<_> = t.scan().collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn auto_increment_fills_null_pk() {
        let mut t = table();
        let r1 = t.insert(row(None, "a", 0.0)).unwrap();
        assert_eq!(t.get(r1).unwrap()[0], Value::Int(1));
        // explicit id advances counter
        t.insert(row(Some(10), "b", 0.0)).unwrap();
        let r3 = t.insert(row(None, "c", 0.0)).unwrap();
        assert_eq!(t.get(r3).unwrap()[0], Value::Int(11));
    }

    #[test]
    fn pk_duplicate_rejected() {
        let mut t = table();
        t.insert(row(Some(1), "a", 0.0)).unwrap();
        let err = t.insert(row(Some(1), "b", 0.0)).unwrap_err();
        assert!(matches!(err, SqlError::DuplicateKey(_)));
        assert_eq!(t.row_count(), 1, "failed insert left no trace");
    }

    #[test]
    fn not_null_enforced() {
        let mut t = table();
        let err = t
            .insert(vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap_err();
        assert!(matches!(err, SqlError::Constraint(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = table();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn type_coercion_on_insert() {
        let mut t = table();
        let rid = t
            .insert(vec![Value::Int(1), Value::Text("a".into()), Value::Int(3)])
            .unwrap();
        assert_eq!(t.get(rid).unwrap()[2], Value::Double(3.0));
    }

    #[test]
    fn pk_lookup_and_range() {
        let mut t = table();
        for i in 1..=10 {
            t.insert(row(Some(i), "u", i as f64)).unwrap();
        }
        let rid = t.pk_lookup(&Value::Int(7)).unwrap();
        assert_eq!(t.get(rid).unwrap()[0], Value::Int(7));
        assert!(t.pk_lookup(&Value::Int(99)).is_none());
        let ids: Vec<i64> = t
            .pk_range(
                Bound::Included(&Value::Int(3)),
                Bound::Excluded(&Value::Int(6)),
            )
            .unwrap()
            .map(|rid| match t.get(rid).unwrap()[0] {
                Value::Int(i) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn secondary_index_tracks_updates_and_deletes() {
        let mut t = table();
        t.create_index("idx_name", 1, false).unwrap();
        let r1 = t.insert(row(Some(1), "alice", 0.0)).unwrap();
        let r2 = t.insert(row(Some(2), "alice", 0.0)).unwrap();
        let ix = t.index_on(1).unwrap();
        assert_eq!(ix.lookup_eq(&Value::Text("alice".into())).len(), 2);

        t.update(r1, row(Some(1), "carol", 0.0)).unwrap();
        let ix = t.index_on(1).unwrap();
        assert_eq!(ix.lookup_eq(&Value::Text("alice".into())), &[r2]);
        assert_eq!(ix.lookup_eq(&Value::Text("carol".into())), &[r1]);

        t.delete(r2).unwrap();
        let ix = t.index_on(1).unwrap();
        assert!(ix.lookup_eq(&Value::Text("alice".into())).is_empty());
    }

    #[test]
    fn unique_secondary_index_enforced() {
        let mut t = table();
        t.create_index("uq_name", 1, true).unwrap();
        t.insert(row(Some(1), "alice", 0.0)).unwrap();
        let err = t.insert(row(Some(2), "alice", 0.0)).unwrap_err();
        assert!(matches!(err, SqlError::DuplicateKey(_)));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn create_index_backfills_and_rejects_duplicate_name() {
        let mut t = table();
        t.insert(row(Some(1), "a", 0.0)).unwrap();
        t.insert(row(Some(2), "b", 0.0)).unwrap();
        t.create_index("idx", 1, false).unwrap();
        assert_eq!(t.index_on(1).unwrap().distinct_keys(), 2);
        assert!(matches!(
            t.create_index("idx", 2, false),
            Err(SqlError::DuplicateIndex(_))
        ));
    }

    #[test]
    fn update_pk_change_checked() {
        let mut t = table();
        t.insert(row(Some(1), "a", 0.0)).unwrap();
        let r2 = t.insert(row(Some(2), "b", 0.0)).unwrap();
        let err = t.update(r2, row(Some(1), "b", 0.0)).unwrap_err();
        assert!(matches!(err, SqlError::DuplicateKey(_)));
        // Legal pk move works.
        t.update(r2, row(Some(3), "b", 0.0)).unwrap();
        assert!(t.pk_lookup(&Value::Int(2)).is_none());
        assert!(t.pk_lookup(&Value::Int(3)).is_some());
    }

    #[test]
    fn timestamp_auto_increment_respects_type_affinity() {
        // The auto-increment fill used to store the raw counter Int even in
        // a TIMESTAMP column, so reads surfaced mixed types.
        let schema = TableSchema::new(
            "log",
            vec![
                Column::new("ts", DataType::Timestamp)
                    .primary_key()
                    .auto_increment(),
                Column::new("msg", DataType::Text),
            ],
        )
        .unwrap();
        let mut t = Table::new(schema);
        let r1 = t
            .insert(vec![Value::Null, Value::Text("a".into())])
            .unwrap();
        assert_eq!(t.get(r1).unwrap()[0], Value::Timestamp(1));
        // Explicit values still advance the counter.
        t.insert(vec![Value::Int(10), Value::Text("b".into())])
            .unwrap();
        let r3 = t
            .insert(vec![Value::Null, Value::Text("c".into())])
            .unwrap();
        assert_eq!(t.get(r3).unwrap()[0], Value::Timestamp(11));
    }

    #[test]
    fn schema_serial_set_and_read() {
        let mut t = table();
        assert_eq!(t.schema_serial(), 0);
        t.set_schema_serial(7);
        assert_eq!(t.schema_serial(), 7);
        assert_eq!(t.clone().schema_serial(), 7, "serial survives fork clones");
    }

    #[test]
    fn restore_round_trips_delete() {
        let mut t = table();
        let rid = t.insert(row(Some(1), "a", 0.5)).unwrap();
        let old = t.delete(rid).unwrap();
        assert_eq!(t.row_count(), 0);
        t.restore(rid, old);
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.pk_lookup(&Value::Int(1)), Some(rid));
    }
}
