//! The engine facade: sessions, transactions, autocommit, binlogging, and
//! replica apply.

use crate::ast::Statement;
use crate::binlog::{Binlog, BinlogEvent, BinlogFormat, EventPayload, Lsn};
use crate::cache::{CacheStats, CachedPlan, PlanCache};
use crate::error::SqlError;
use crate::exec::{
    exec_delete, exec_insert, exec_select, exec_select_planned, exec_update, plan_select, Capture,
    Catalog, QueryResult, RowChange, RowChangeKind, Undo, UndoEntry, WriteOutcome,
};
use crate::expr::EvalCtx;
use crate::parser::parse;
use crate::storage::Table;
use crate::value::Value;
use std::sync::Arc;

/// A client session: clock context, transaction state, pending binlog
/// payloads. The *caller* supplies `now_micros` (ultimately from the owning
/// VM's drifting clock) before each statement — the engine never reads host
/// time.
#[derive(Debug, Default)]
pub struct Session {
    /// Local wall-clock microseconds used by `NOW_MICROS()` and as the
    /// commit timestamp of binlog events.
    pub now_micros: i64,
    in_txn: bool,
    undo: Vec<UndoEntry>,
    pending: Vec<EventPayload>,
    last_insert_id: Option<i64>,
}

impl Session {
    /// Fresh autocommit session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is an explicit transaction open?
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// The auto-increment id assigned by the most recent INSERT.
    pub fn last_insert_id(&self) -> Option<i64> {
        self.last_insert_id
    }
}

/// Role for [`Engine::fork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForkRole {
    /// Fork into a master logging with the given format.
    Master(BinlogFormat),
    /// Fork into a slave (no binlogging).
    Slave,
}

/// The database engine: catalog + binary log.
///
/// One engine instance models one MySQL server (master or slave). Masters
/// are constructed with [`Engine::new_master`] and log writes; slaves use
/// [`Engine::new_slave`] and apply shipped events without re-logging
/// (MySQL's default `log_slave_updates = OFF`).
#[derive(Debug)]
pub struct Engine {
    catalog: Catalog,
    binlog: Binlog,
    format: BinlogFormat,
    log_writes: bool,
    plan_cache: PlanCache,
    /// Monotone counter bumped by every schema-affecting DDL. Tables are
    /// stamped with it on CREATE TABLE / CREATE INDEX; cached plans record
    /// the stamps they were planned against (see [`crate::cache`]).
    ddl_serial: u64,
}

/// Default plan-cache capacity per engine. The workloads in this repo use a
/// few dozen distinct statement shapes, so a few hundred entries means the
/// steady state never evicts.
const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// Plan-cache capacity for new engines: `AMDB_PLAN_CACHE=off` (or `0`)
/// disables caching, a number overrides the capacity, anything else — and
/// the common case of the variable being unset — selects the default.
fn default_plan_cache_capacity() -> usize {
    match std::env::var("AMDB_PLAN_CACHE") {
        Ok(v) => {
            let v = v.trim();
            if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
                0
            } else {
                v.parse().unwrap_or(DEFAULT_PLAN_CACHE_CAPACITY)
            }
        }
        Err(_) => DEFAULT_PLAN_CACHE_CAPACITY,
    }
}

impl Engine {
    /// A master engine with the given binlog format.
    pub fn new_master(format: BinlogFormat) -> Self {
        Self {
            catalog: Catalog::new(),
            binlog: Binlog::new(),
            format,
            log_writes: true,
            plan_cache: PlanCache::new(default_plan_cache_capacity()),
            ddl_serial: 0,
        }
    }

    /// A slave engine (does not produce binlog events).
    pub fn new_slave() -> Self {
        Self {
            catalog: Catalog::new(),
            binlog: Binlog::new(),
            format: BinlogFormat::Statement,
            log_writes: false,
            plan_cache: PlanCache::new(default_plan_cache_capacity()),
            ddl_serial: 0,
        }
    }

    /// The binlog (master side).
    pub fn binlog(&self) -> &Binlog {
        &self.binlog
    }

    /// Fork a copy of this engine's *data* (catalog incl. indexes and
    /// auto-increment state) with a fresh, empty binlog.
    ///
    /// This is how the experiments realize the paper's requirement that
    /// "both the master and slaves should start with a pre-loaded,
    /// fully-synchronized database" (§III-B): one template engine is loaded
    /// once, then forked into the master and every slave of each run.
    pub fn fork(&self, role: ForkRole) -> Engine {
        let (format, log_writes) = match role {
            ForkRole::Master(format) => (format, true),
            ForkRole::Slave => (BinlogFormat::Statement, false),
        };
        Engine {
            catalog: self.catalog.clone(),
            binlog: Binlog::new(),
            format,
            log_writes,
            // Same capacity, fresh (empty) cache: plans are cheap to rebuild
            // and per-fork caches keep the fork cost proportional to data.
            plan_cache: PlanCache::new(self.plan_cache.capacity()),
            ddl_serial: self.ddl_serial,
        }
    }

    /// Promote a slave engine to master in place (failover): it keeps its
    /// data, starts logging writes, and opens a fresh binlog. Writes on the
    /// failed old master that this replica never applied are *lost* — the
    /// asynchronous-replication data-loss window of §II ("once the updated
    /// replica goes offline before duplicating data, data loss may occur").
    pub fn promote_to_master(&mut self, format: BinlogFormat) {
        self.promote_to_master_at(format, Lsn(0));
    }

    /// [`Self::promote_to_master`], continuing an existing LSN space: the
    /// fresh binlog's first append is assigned `at`. The shared-log backend
    /// promotes with `at = ` the log service's published head, so the
    /// cluster-wide LSN space survives failover and tailing replicas keep
    /// their positions.
    pub fn promote_to_master_at(&mut self, format: BinlogFormat, at: Lsn) {
        self.format = format;
        self.log_writes = true;
        self.binlog = Binlog::starting_at(at);
    }

    /// Whether this engine logs writes (true for masters).
    pub fn is_master(&self) -> bool {
        self.log_writes
    }

    /// Binlog format in use.
    pub fn binlog_format(&self) -> BinlogFormat {
        self.format
    }

    /// Does a table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.contains_key(&name.to_ascii_lowercase())
    }

    /// Row count of a table (testing/monitoring aid).
    pub fn table_rows(&self, name: &str) -> Option<usize> {
        self.catalog
            .get(&name.to_ascii_lowercase())
            .map(Table::row_count)
    }

    /// Primary-key column index of a table (`None` if the table has no
    /// primary key, or does not exist). The parallel-apply scheduler uses
    /// this to turn row images into conflict keys.
    pub fn pk_index_of(&self, name: &str) -> Option<usize> {
        self.catalog
            .get(&name.to_ascii_lowercase())?
            .schema()
            .pk_index()
    }

    /// Last-writer LSN of the row with primary key `key` (0 = base-load
    /// data never touched by row apply; `None` = no such row / no pk).
    pub fn row_version_of(&self, table: &str, key: &Value) -> Option<u64> {
        let t = self.catalog.get(&table.to_ascii_lowercase())?;
        let rid = t.pk_lookup(key)?;
        t.row_version(rid)
    }

    /// Local apply instant (µs on this replica's clock) of the row with
    /// primary key `key`, if it was written through the row-apply path.
    /// `None` for locally-executed rows: under the *statement* binlog format
    /// the re-executed INSERT materializes the slave's own clock into the
    /// stored timestamp, so no out-of-band stamp is needed — but under the
    /// *row* format the shipped image carries the master's timestamp
    /// verbatim, and reading delay from stored data alone would make every
    /// heartbeat look like it arrived instantly.
    pub fn apply_time_of(&self, table: &str, key: &Value) -> Option<u64> {
        let t = self.catalog.get(&table.to_ascii_lowercase())?;
        let rid = t.pk_lookup(key)?;
        t.applied_at_of(rid)
    }

    /// Deterministic 64-bit fingerprint of all table *contents*.
    ///
    /// FNV-1a over table names (catalog order — a `BTreeMap`, so sorted),
    /// row counts, and every row's values in row-id order. Hand-rolled
    /// because `std`'s `DefaultHasher` is randomized per process and the
    /// format-equivalence tests need a value comparable across runs.
    /// Deliberately excludes binlogs, plan caches, auto-increment cursors,
    /// and row-version stamps: two replicas fingerprint equal iff a client
    /// reading any table sees identical data.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for (name, table) in &self.catalog {
            eat(name.as_bytes());
            eat(&(table.row_count() as u64).to_le_bytes());
            for (_, row) in table.scan() {
                for v in row {
                    match v {
                        Value::Null => eat(&[0]),
                        Value::Int(i) => {
                            eat(&[1]);
                            eat(&i.to_le_bytes());
                        }
                        Value::Double(d) => {
                            eat(&[2]);
                            eat(&d.to_bits().to_le_bytes());
                        }
                        Value::Text(s) => {
                            eat(&[3]);
                            eat(&(s.len() as u64).to_le_bytes());
                            eat(s.as_bytes());
                        }
                        Value::Bool(b) => eat(&[4, *b as u8]),
                        Value::Timestamp(t) => {
                            eat(&[5]);
                            eat(&t.to_le_bytes());
                        }
                    }
                }
            }
        }
        h
    }

    /// Execute one statement with positional parameters. Parsing and
    /// planning go through the plan cache: repeated statement texts (every
    /// hot-path query, and every statement-format binlog event a slave
    /// re-applies) cost a hash lookup instead of a parse.
    pub fn execute(
        &mut self,
        session: &mut Session,
        sql: &str,
        params: &[Value],
    ) -> Result<QueryResult, SqlError> {
        let plan = self.prepare(sql)?;
        self.execute_plan(session, &plan, sql, params)
    }

    /// Parse and plan `sql`, consulting the plan cache. Cache entries are
    /// revalidated against the engine's DDL serial; plans whose table
    /// dependencies moved are rebuilt. Statements that fail to parse or
    /// plan are never cached.
    pub fn prepare(&mut self, sql: &str) -> Result<Arc<CachedPlan>, SqlError> {
        if self.plan_cache.capacity() != 0 {
            let catalog = &self.catalog;
            if let Some(plan) =
                self.plan_cache
                    .get_validated(sql, self.ddl_serial, |p| match &p.select {
                        Some(sel) => sel.deps().iter().all(|(key, serial)| {
                            catalog.get(key).map(Table::schema_serial) == Some(*serial)
                        }),
                        // Non-SELECT statements resolve table names at
                        // execute time; the cached AST cannot go stale.
                        None => true,
                    })
            {
                return Ok(plan);
            }
        }
        let stmt = parse(sql)?;
        let select = match &stmt {
            Statement::Select(sel) => Some(plan_select(&self.catalog, sel)?),
            _ => None,
        };
        let param_count = stmt.param_count();
        let plan = Arc::new(CachedPlan {
            stmt,
            select,
            param_count,
        });
        self.plan_cache
            .insert(sql.to_string(), Arc::clone(&plan), self.ddl_serial);
        Ok(plan)
    }

    /// Plan-cache hit/miss counters (tests, benches, monitoring).
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// Resize the plan cache; a capacity of zero disables caching (used by
    /// the transparency cross-checks to force the uncached path).
    pub fn set_plan_cache_capacity(&mut self, capacity: usize) {
        self.plan_cache.set_capacity(capacity);
    }

    /// Execute a semicolon-separated batch (DDL scripts, loaders). Returns
    /// the last statement's result. Parameters are not allowed in batches.
    pub fn execute_batch(
        &mut self,
        session: &mut Session,
        sql: &str,
    ) -> Result<QueryResult, SqlError> {
        let mut last = QueryResult::default();
        for piece in split_statements(sql) {
            let trimmed = piece.trim();
            if trimmed.is_empty() {
                continue;
            }
            last = self.execute(session, trimmed, &[])?;
        }
        Ok(last)
    }

    fn execute_plan(
        &mut self,
        session: &mut Session,
        plan: &CachedPlan,
        sql: &str,
        params: &[Value],
    ) -> Result<QueryResult, SqlError> {
        let ctx = EvalCtx {
            params,
            now_micros: session.now_micros,
        };
        match &plan.stmt {
            Statement::Select(sel) => match &plan.select {
                Some(p) => exec_select_planned(&self.catalog, p, &ctx),
                None => exec_select(&self.catalog, sel, &ctx),
            },
            Statement::Explain(sel) => crate::exec::explain_select(&self.catalog, sel),
            Statement::Begin => {
                if session.in_txn {
                    return Err(SqlError::Transaction("transaction already open".into()));
                }
                session.in_txn = true;
                Ok(QueryResult::default())
            }
            Statement::Commit => {
                if !session.in_txn {
                    return Err(SqlError::Transaction("COMMIT without BEGIN".into()));
                }
                session.in_txn = false;
                session.undo.clear();
                self.flush_pending(session);
                Ok(QueryResult::default())
            }
            Statement::Rollback => {
                if !session.in_txn {
                    return Err(SqlError::Transaction("ROLLBACK without BEGIN".into()));
                }
                session.in_txn = false;
                session.pending.clear();
                let undo = std::mem::take(&mut session.undo);
                self.apply_undo(undo);
                Ok(QueryResult::default())
            }
            Statement::CreateTable {
                schema,
                if_not_exists,
            } => {
                let key = schema.name.to_ascii_lowercase();
                if self.catalog.contains_key(&key) {
                    if *if_not_exists {
                        return Ok(QueryResult::default());
                    }
                    return Err(SqlError::DuplicateTable(schema.name.clone()));
                }
                self.ddl_serial += 1;
                let mut table = Table::new(schema.clone());
                table.set_schema_serial(self.ddl_serial);
                self.catalog.insert(key, table);
                self.log_ddl(session, sql, plan.param_count, params)?;
                Ok(QueryResult::default())
            }
            Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            } => {
                let t = crate::exec::get_table_mut(&mut self.catalog, table)?;
                let col = t
                    .schema()
                    .column_index(column)
                    .ok_or_else(|| SqlError::UnknownColumn(column.clone()))?;
                t.create_index(name.clone(), col, *unique)?;
                self.ddl_serial += 1;
                t.set_schema_serial(self.ddl_serial);
                self.log_ddl(session, sql, plan.param_count, params)?;
                Ok(QueryResult::default())
            }
            Statement::DropTable { name, if_exists } => {
                let key = name.to_ascii_lowercase();
                if self.catalog.remove(&key).is_none() && !*if_exists {
                    return Err(SqlError::UnknownTable(name.clone()));
                }
                // A later CREATE TABLE of the same name gets a fresh serial,
                // so plans against the dropped table can never alias it.
                self.ddl_serial += 1;
                self.log_ddl(session, sql, plan.param_count, params)?;
                Ok(QueryResult::default())
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let cap = self.write_capture(session);
                let out = exec_insert(&mut self.catalog, table, columns, rows, &ctx, cap)?;
                self.finish_write(session, sql, plan.param_count, params, out)
            }
            Statement::Update {
                table,
                sets,
                filter,
            } => {
                let cap = self.write_capture(session);
                let out = exec_update(&mut self.catalog, table, sets, filter.as_ref(), &ctx, cap)?;
                self.finish_write(session, sql, plan.param_count, params, out)
            }
            Statement::Delete { table, filter } => {
                let cap = self.write_capture(session);
                let out = exec_delete(&mut self.catalog, table, filter.as_ref(), &ctx, cap)?;
                self.finish_write(session, sql, plan.param_count, params, out)
            }
        }
    }

    /// What a write must capture for *this* engine and session: undo only
    /// inside an explicit transaction, row images only when this engine
    /// row-logs. Autocommit statement-format writes skip both.
    fn write_capture(&self, session: &Session) -> Capture {
        Capture {
            undo: session.in_txn,
            changes: self.log_writes && self.format == BinlogFormat::Row,
        }
    }

    /// Record a write's binlog payload and undo, honoring autocommit.
    fn finish_write(
        &mut self,
        session: &mut Session,
        sql: &str,
        param_count: usize,
        params: &[Value],
        out: WriteOutcome,
    ) -> Result<QueryResult, SqlError> {
        if out.result.last_insert_id.is_some() {
            session.last_insert_id = out.result.last_insert_id;
        }
        if self.log_writes && out.result.rows_affected > 0 {
            let payload = match self.format {
                BinlogFormat::Statement => EventPayload::Statement {
                    sql: sql.to_string(),
                    params: log_params(param_count, params)?,
                },
                BinlogFormat::Row => EventPayload::Rows {
                    changes: out.changes,
                },
            };
            session.pending.push(payload);
        }
        if session.in_txn {
            session.undo.extend(out.undo);
        } else {
            self.flush_pending(session);
        }
        Ok(out.result)
    }

    /// DDL is always statement-logged and implicitly commits (as in MySQL).
    fn log_ddl(
        &mut self,
        session: &mut Session,
        sql: &str,
        param_count: usize,
        params: &[Value],
    ) -> Result<(), SqlError> {
        if self.log_writes {
            session.pending.push(EventPayload::Statement {
                sql: sql.to_string(),
                params: log_params(param_count, params)?,
            });
        }
        session.undo.clear();
        session.in_txn = false;
        self.flush_pending(session);
        Ok(())
    }

    fn flush_pending(&mut self, session: &mut Session) {
        // Row payloads flushed together belong to one committed transaction:
        // coalesce adjacent ones into a single commit-atomic `Rows` event so
        // the slave applies (and the parallel-apply scheduler batches) whole
        // transactions, never a prefix of one. Statement payloads keep their
        // one-event-per-statement shape — statement format replays each
        // statement against the slave clock individually, and autocommit
        // flushes (the timed workloads' only case) carry a single payload
        // either way, so this is a no-op for them.
        let mut payloads = session.pending.drain(..);
        if let Some(mut current) = payloads.next() {
            for payload in payloads {
                match (&mut current, payload) {
                    (EventPayload::Rows { changes }, EventPayload::Rows { changes: more }) => {
                        changes.extend(more);
                    }
                    (_, next) => {
                        let done = std::mem::replace(&mut current, next);
                        self.binlog.append(session.now_micros, done);
                    }
                }
            }
            self.binlog.append(session.now_micros, current);
        }
        session.undo.clear();
    }

    fn apply_undo(&mut self, undo: Vec<UndoEntry>) {
        for entry in undo.into_iter().rev() {
            let Some(table) = self.catalog.get_mut(&entry.table) else {
                continue; // table dropped by DDL after the write; nothing to undo
            };
            match entry.undo {
                Undo::Inserted(rid) => {
                    table.delete(rid);
                }
                Undo::Updated(rid, old) => {
                    let _ = table.update(rid, old.to_vec());
                }
                Undo::Deleted(rid, old) => {
                    table.restore(rid, old);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Replica apply
    // ------------------------------------------------------------------

    /// Apply one shipped binlog event on a replica. `now_micros` is the
    /// *replica's* local clock — for statement events this re-evaluates
    /// `NOW_MICROS()` against the slave clock, producing the paper's
    /// measurable heartbeat skew.
    pub fn apply_event(
        &mut self,
        event: &BinlogEvent,
        now_micros: i64,
    ) -> Result<QueryResult, SqlError> {
        match &event.payload {
            EventPayload::Statement { sql, params } => {
                // Fast path: the statement text is the cache key, so a slave
                // re-applying the workload's repeated statement shapes hits
                // its plan cache and skips the parse entirely.
                let mut session = Session {
                    now_micros,
                    ..Session::default()
                };
                self.execute(&mut session, sql, params)
            }
            EventPayload::Rows { changes } => {
                let mut res = QueryResult::default();
                for change in changes {
                    self.apply_row_change(change, event.lsn, now_micros)?;
                    res.rows_affected += 1;
                    res.rows_examined += 1;
                }
                Ok(res)
            }
        }
    }

    fn apply_row_change(
        &mut self,
        change: &RowChange,
        lsn: Lsn,
        now_micros: i64,
    ) -> Result<(), SqlError> {
        let table = crate::exec::get_table_mut(&mut self.catalog, &change.table)?;
        let pk = table.schema().pk_index();
        let find = |table: &Table, image: &[Value]| -> Option<crate::storage::RowId> {
            match pk {
                Some(pk_idx) => table.pk_lookup(&image[pk_idx]),
                None => table
                    .scan()
                    .find(|(_, row)| *row == image)
                    .map(|(rid, _)| rid),
            }
        };
        match &change.kind {
            RowChangeKind::Insert { row } => {
                let rid = table.insert(row.clone())?;
                table.stamp_version(rid, lsn.0);
                table.stamp_applied_at(rid, now_micros.max(0) as u64);
            }
            RowChangeKind::Update { before, after } => {
                let rid = find(table, before).ok_or_else(|| {
                    SqlError::Constraint(format!(
                        "row-apply update: no matching row in '{}'",
                        change.table
                    ))
                })?;
                table.update(rid, after.clone())?;
                table.stamp_version(rid, lsn.0);
                table.stamp_applied_at(rid, now_micros.max(0) as u64);
            }
            RowChangeKind::Delete { row } => {
                let rid = find(table, row).ok_or_else(|| {
                    SqlError::Constraint(format!(
                        "row-apply delete: no matching row in '{}'",
                        change.table
                    ))
                })?;
                table.delete(rid);
            }
        }
        Ok(())
    }

    /// Read binlog events at or after `from` (the slave I/O thread's fetch).
    pub fn binlog_from(&self, from: Lsn) -> &[BinlogEvent] {
        self.binlog.read_from(from)
    }
}

/// Validate binding arity and normalize parameter values for statement
/// binlogging. The arity errors reproduce the literal-substitution path
/// this replaces, byte for byte. `Timestamp` normalizes to `Int` because
/// that is what the old path's literal round-trip produced: a timestamp
/// renders as a bare integer literal, which re-parses as INT and only
/// regains its affinity through column coercion on the slave.
fn log_params(param_count: usize, params: &[Value]) -> Result<Vec<Value>, SqlError> {
    if params.len() < param_count {
        return Err(SqlError::BadParameter(format!(
            "placeholder {} not bound",
            params.len() + 1
        )));
    }
    if params.len() > param_count {
        return Err(SqlError::BadParameter(format!(
            "{} parameters bound, {} placeholders found",
            params.len(),
            param_count
        )));
    }
    Ok(params
        .iter()
        .map(|v| match v {
            Value::Timestamp(t) => Value::Int(*t),
            other => other.clone(),
        })
        .collect())
}

/// Substitute `?` placeholders with literal values. Quoted strings are
/// respected. Statement binlogging used this before parameters were shipped
/// alongside the SQL text; it remains for tooling and tests that need a
/// self-contained statement string.
pub fn substitute_params(sql: &str, params: &[Value]) -> Result<String, SqlError> {
    let mut out = String::with_capacity(sql.len() + params.len() * 8);
    let mut idx = 0usize;
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                out.push(c);
                // copy until closing quote, handling '' escapes
                while let Some(sc) = chars.next() {
                    out.push(sc);
                    if sc == '\'' {
                        if chars.peek() == Some(&'\'') {
                            out.push(chars.next().expect("peeked"));
                        } else {
                            break;
                        }
                    }
                }
            }
            '?' => {
                let v = params.get(idx).ok_or_else(|| {
                    SqlError::BadParameter(format!("placeholder {} not bound", idx + 1))
                })?;
                out.push_str(&v.to_literal());
                idx += 1;
            }
            other => out.push(other),
        }
    }
    if idx != params.len() {
        return Err(SqlError::BadParameter(format!(
            "{} parameters bound, {} placeholders found",
            params.len(),
            idx
        )));
    }
    Ok(out)
}

/// Split a batch on top-level semicolons (string literals respected).
pub fn split_statements(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                cur.push(c);
                while let Some(sc) = chars.next() {
                    cur.push(sc);
                    if sc == '\'' {
                        if chars.peek() == Some(&'\'') {
                            cur.push(chars.next().expect("peeked"));
                        } else {
                            break;
                        }
                    }
                }
            }
            ';' => {
                out.push(std::mem::take(&mut cur));
            }
            other => cur.push(other),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn master() -> (Engine, Session) {
        let mut e = Engine::new_master(BinlogFormat::Statement);
        let mut s = Session::new();
        e.execute_batch(
            &mut s,
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name VARCHAR(64) NOT NULL, score DOUBLE);
             CREATE INDEX idx_name ON users (name);",
        )
        .unwrap();
        (e, s)
    }

    #[test]
    fn end_to_end_crud() {
        let (mut e, mut s) = master();
        let r = e
            .execute(
                &mut s,
                "INSERT INTO users (name, score) VALUES (?, ?)",
                &[Value::from("alice"), Value::from(1.5)],
            )
            .unwrap();
        assert_eq!(r.rows_affected, 1);
        assert_eq!(r.last_insert_id, Some(1));

        e.execute(
            &mut s,
            "INSERT INTO users (name, score) VALUES ('bob', 2.0), ('carol', 3.0)",
            &[],
        )
        .unwrap();

        let r = e
            .execute(
                &mut s,
                "SELECT name FROM users WHERE score >= 2 ORDER BY name",
                &[],
            )
            .unwrap();
        assert_eq!(r.columns.as_ref(), ["name"]);
        assert_eq!(
            r.rows,
            vec![vec![Value::from("bob")], vec![Value::from("carol")]]
        );

        let r = e
            .execute(
                &mut s,
                "UPDATE users SET score = score + 1 WHERE name = 'bob'",
                &[],
            )
            .unwrap();
        assert_eq!(r.rows_affected, 1);

        let r = e
            .execute(&mut s, "DELETE FROM users WHERE id = 1", &[])
            .unwrap();
        assert_eq!(r.rows_affected, 1);
        assert_eq!(e.table_rows("users"), Some(2));
    }

    #[test]
    fn select_with_join_and_aggregate() {
        let (mut e, mut s) = master();
        e.execute_batch(
            &mut s,
            "CREATE TABLE orders (id INT PRIMARY KEY, user_id INT, total DOUBLE);
             CREATE INDEX idx_user ON orders (user_id);
             INSERT INTO users (name, score) VALUES ('a', 0.0), ('b', 0.0);
             INSERT INTO orders VALUES (1, 1, 10.0), (2, 1, 20.0), (3, 2, 5.0)",
        )
        .unwrap();
        let r = e
            .execute(
                &mut s,
                "SELECT u.name, COUNT(*) AS n, SUM(o.total) AS total \
                 FROM users u INNER JOIN orders o ON o.user_id = u.id \
                 GROUP BY u.id ORDER BY total DESC",
                &[],
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::from("a"));
        assert_eq!(r.rows[0][1], Value::Int(2));
        assert_eq!(r.rows[0][2], Value::Double(30.0));
    }

    #[test]
    fn left_join_pads_nulls() {
        let (mut e, mut s) = master();
        e.execute_batch(
            &mut s,
            "CREATE TABLE orders (id INT PRIMARY KEY, user_id INT);
             INSERT INTO users (name) VALUES ('a'), ('b');
             INSERT INTO orders VALUES (1, 1)",
        )
        .unwrap();
        let r = e
            .execute(
                &mut s,
                "SELECT u.name, o.id FROM users u LEFT JOIN orders o ON o.user_id = u.id ORDER BY u.name",
                &[],
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[1], vec![Value::from("b"), Value::Null]);
    }

    #[test]
    fn transaction_rollback_restores_state() {
        let (mut e, mut s) = master();
        e.execute(&mut s, "INSERT INTO users (name) VALUES ('keep')", &[])
            .unwrap();
        e.execute(&mut s, "BEGIN", &[]).unwrap();
        e.execute(&mut s, "INSERT INTO users (name) VALUES ('gone')", &[])
            .unwrap();
        e.execute(
            &mut s,
            "UPDATE users SET name = 'kept?' WHERE name = 'keep'",
            &[],
        )
        .unwrap();
        e.execute(&mut s, "DELETE FROM users WHERE name = 'kept?'", &[])
            .unwrap_or_else(|_| panic!());
        e.execute(&mut s, "ROLLBACK", &[]).unwrap();
        let r = e
            .execute(&mut s, "SELECT name FROM users ORDER BY name", &[])
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::from("keep")]]);
        // Rolled-back work must not reach the binlog.
        let binlogged: Vec<_> = e
            .binlog()
            .read_from(Lsn(0))
            .iter()
            .filter(|ev| match &ev.payload {
                EventPayload::Statement { sql, .. } => sql.contains("gone"),
                _ => false,
            })
            .collect();
        assert!(binlogged.is_empty());
    }

    #[test]
    fn transaction_commit_logs_all_statements() {
        let (mut e, mut s) = master();
        let before = e.binlog().len();
        e.execute(&mut s, "BEGIN", &[]).unwrap();
        e.execute(&mut s, "INSERT INTO users (name) VALUES ('x')", &[])
            .unwrap();
        e.execute(&mut s, "INSERT INTO users (name) VALUES ('y')", &[])
            .unwrap();
        assert_eq!(e.binlog().len(), before, "nothing logged before commit");
        e.execute(&mut s, "COMMIT", &[]).unwrap();
        assert_eq!(e.binlog().len(), before + 2);
    }

    #[test]
    fn txn_state_errors() {
        let (mut e, mut s) = master();
        assert!(e.execute(&mut s, "COMMIT", &[]).is_err());
        assert!(e.execute(&mut s, "ROLLBACK", &[]).is_err());
        e.execute(&mut s, "BEGIN", &[]).unwrap();
        assert!(e.execute(&mut s, "BEGIN", &[]).is_err());
    }

    #[test]
    fn statement_replication_reexecutes_now_micros() {
        let mut master = Engine::new_master(BinlogFormat::Statement);
        let mut ms = Session::new();
        ms.now_micros = 1_000;
        master
            .execute_batch(
                &mut ms,
                "CREATE TABLE heartbeat (id INT PRIMARY KEY, ts TIMESTAMP)",
            )
            .unwrap();
        master
            .execute(
                &mut ms,
                "INSERT INTO heartbeat (id, ts) VALUES (?, NOW_MICROS())",
                &[Value::Int(1)],
            )
            .unwrap();

        let mut slave = Engine::new_slave();
        // Slave clock is 5000 µs ahead.
        for ev in master.binlog_from(Lsn(0)).to_vec() {
            slave.apply_event(&ev, 6_000).unwrap();
        }
        let mut ss = Session::new();
        let m = master
            .execute(&mut ms, "SELECT ts FROM heartbeat WHERE id = 1", &[])
            .unwrap();
        let sl = slave
            .execute(&mut ss, "SELECT ts FROM heartbeat WHERE id = 1", &[])
            .unwrap();
        assert_eq!(m.rows[0][0], Value::Timestamp(1_000));
        assert_eq!(
            sl.rows[0][0],
            Value::Timestamp(6_000),
            "slave re-evaluated NOW_MICROS with its own clock"
        );
    }

    #[test]
    fn row_replication_copies_exact_images() {
        let mut master = Engine::new_master(BinlogFormat::Row);
        let mut ms = Session::new();
        ms.now_micros = 1_000;
        master
            .execute_batch(&mut ms, "CREATE TABLE t (id INT PRIMARY KEY, ts TIMESTAMP)")
            .unwrap();
        master
            .execute(&mut ms, "INSERT INTO t VALUES (1, NOW_MICROS())", &[])
            .unwrap();
        master
            .execute(&mut ms, "UPDATE t SET ts = 42 WHERE id = 1", &[])
            .unwrap();

        let mut slave = Engine::new_slave();
        for ev in master.binlog_from(Lsn(0)).to_vec() {
            slave.apply_event(&ev, 999_999).unwrap();
        }
        let mut ss = Session::new();
        let r = slave.execute(&mut ss, "SELECT ts FROM t", &[]).unwrap();
        assert_eq!(
            r.rows[0][0],
            Value::Timestamp(42),
            "row format ships master values verbatim"
        );
    }

    #[test]
    fn row_transaction_flushes_one_commit_atomic_event() {
        let mut master = Engine::new_master(BinlogFormat::Row);
        let mut ms = Session::new();
        master
            .execute_batch(&mut ms, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        let head = master.binlog().head();
        master.execute(&mut ms, "BEGIN", &[]).unwrap();
        master
            .execute(&mut ms, "INSERT INTO t VALUES (1, 10)", &[])
            .unwrap();
        master
            .execute(&mut ms, "INSERT INTO t VALUES (2, 20)", &[])
            .unwrap();
        master
            .execute(&mut ms, "UPDATE t SET v = 11 WHERE id = 1", &[])
            .unwrap();
        master.execute(&mut ms, "COMMIT", &[]).unwrap();
        let events = master.binlog_from(head);
        assert_eq!(
            events.len(),
            1,
            "multi-statement txn commits as one row event"
        );
        let EventPayload::Rows { changes } = &events[0].payload else {
            panic!("expected a Rows payload");
        };
        assert_eq!(
            changes.len(),
            3,
            "all three statements' changes ride together"
        );

        // Statement format keeps one event per statement for the same txn.
        let mut stmt_master = Engine::new_master(BinlogFormat::Statement);
        let mut ss = Session::new();
        stmt_master
            .execute_batch(&mut ss, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        let head = stmt_master.binlog().head();
        stmt_master.execute(&mut ss, "BEGIN", &[]).unwrap();
        stmt_master
            .execute(&mut ss, "INSERT INTO t VALUES (1, 10)", &[])
            .unwrap();
        stmt_master
            .execute(&mut ss, "INSERT INTO t VALUES (2, 20)", &[])
            .unwrap();
        stmt_master.execute(&mut ss, "COMMIT", &[]).unwrap();
        assert_eq!(stmt_master.binlog_from(head).len(), 2);
    }

    #[test]
    fn row_apply_stamps_last_writer_lsn() {
        let mut master = Engine::new_master(BinlogFormat::Row);
        let mut ms = Session::new();
        master
            .execute_batch(&mut ms, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        master
            .execute(&mut ms, "INSERT INTO t VALUES (1, 10)", &[])
            .unwrap();
        master
            .execute(&mut ms, "INSERT INTO t VALUES (2, 20)", &[])
            .unwrap();
        master
            .execute(&mut ms, "UPDATE t SET v = 11 WHERE id = 1", &[])
            .unwrap();

        let mut slave = Engine::new_slave();
        let events = master.binlog_from(Lsn(0)).to_vec();
        for ev in &events {
            slave.apply_event(ev, 0).unwrap();
        }
        // Events: DDL(0), insert1(1), insert2(2), update1(3).
        assert_eq!(slave.row_version_of("t", &Value::Int(1)), Some(3));
        assert_eq!(slave.row_version_of("t", &Value::Int(2)), Some(2));
        assert_eq!(slave.row_version_of("t", &Value::Int(9)), None);
        // Master executed locally, never row-applied: base version 0.
        assert_eq!(master.row_version_of("t", &Value::Int(1)), Some(0));
    }

    #[test]
    fn fingerprint_tracks_content_not_provenance() {
        let mut master = Engine::new_master(BinlogFormat::Row);
        let mut ms = Session::new();
        master
            .execute_batch(&mut ms, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        master
            .execute(&mut ms, "INSERT INTO t VALUES (1, 10)", &[])
            .unwrap();

        let mut slave = Engine::new_slave();
        for ev in master.binlog_from(Lsn(0)).to_vec() {
            slave.apply_event(&ev, 0).unwrap();
        }
        assert_eq!(
            master.fingerprint(),
            slave.fingerprint(),
            "identical contents fingerprint equal despite version-stamp differences"
        );
        let before = slave.fingerprint();
        let mut ss = Session::new();
        slave
            .execute(&mut ss, "UPDATE t SET v = 99 WHERE id = 1", &[])
            .unwrap();
        assert_ne!(
            slave.fingerprint(),
            before,
            "content change moves the fingerprint"
        );
    }

    #[test]
    fn pk_index_of_reads_live_catalog() {
        let (e, _) = master();
        assert_eq!(e.pk_index_of("users"), Some(0));
        assert_eq!(
            e.pk_index_of("USERS"),
            Some(0),
            "name lookup is case-insensitive"
        );
        assert_eq!(e.pk_index_of("nope"), None);
    }

    #[test]
    fn substitute_params_respects_strings() {
        let sql = "INSERT INTO t VALUES ('a?b', ?, '''?', ?)";
        let out = substitute_params(sql, &[Value::Int(1), Value::from("x")]).unwrap();
        assert_eq!(out, "INSERT INTO t VALUES ('a?b', 1, '''?', 'x')");
    }

    #[test]
    fn substitute_params_arity_checked() {
        assert!(substitute_params("SELECT ?", &[]).is_err());
        assert!(substitute_params("SELECT ?", &[Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn split_statements_respects_strings() {
        let parts = split_statements("INSERT INTO t VALUES ('a;b'); SELECT 1");
        assert_eq!(parts.len(), 2);
        assert!(parts[0].contains("a;b"));
    }

    #[test]
    fn ddl_implicitly_commits() {
        let (mut e, mut s) = master();
        e.execute(&mut s, "BEGIN", &[]).unwrap();
        e.execute(&mut s, "INSERT INTO users (name) VALUES ('x')", &[])
            .unwrap();
        e.execute(&mut s, "CREATE TABLE other (id INT PRIMARY KEY)", &[])
            .unwrap();
        assert!(!s.in_transaction(), "DDL closed the transaction");
        // The pending insert was committed (logged), not rolled back.
        assert!(e.binlog().read_from(Lsn(0)).iter().any(
            |ev| matches!(&ev.payload, EventPayload::Statement { sql, .. } if sql.contains("'x'"))
        ));
    }

    #[test]
    fn plan_cache_hits_on_repeated_statements() {
        let (mut e, mut s) = master();
        e.set_plan_cache_capacity(64);
        let sql = "SELECT name FROM users WHERE id = ?";
        for id in 0..5 {
            e.execute(&mut s, sql, &[Value::Int(id)]).unwrap();
        }
        let stats = e.plan_cache_stats();
        assert!(stats.hits >= 4, "expected repeat hits, got {stats:?}");
        assert!(stats.entries >= 1);
    }

    #[test]
    fn plan_cache_capacity_zero_disables() {
        let (mut e, mut s) = master();
        e.set_plan_cache_capacity(0);
        let sql = "SELECT name FROM users";
        e.execute(&mut s, sql, &[]).unwrap();
        e.execute(&mut s, sql, &[]).unwrap();
        let stats = e.plan_cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn binlog_ships_raw_text_with_params() {
        let (mut e, mut s) = master();
        e.execute(
            &mut s,
            "INSERT INTO users (name, score) VALUES (?, ?)",
            &[Value::from("amy"), Value::from(0.5)],
        )
        .unwrap();
        let ev = e.binlog().read_from(Lsn(0)).last().unwrap();
        match &ev.payload {
            EventPayload::Statement { sql, params } => {
                assert!(sql.contains('?'), "text ships unsubstituted: {sql}");
                assert_eq!(params, &[Value::from("amy"), Value::from(0.5)]);
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn binlog_normalizes_timestamp_params_to_int() {
        let (mut e, mut s) = master();
        e.execute_batch(&mut s, "CREATE TABLE hb (id INT PRIMARY KEY, ts TIMESTAMP)")
            .unwrap();
        e.execute(
            &mut s,
            "INSERT INTO hb VALUES (?, ?)",
            &[Value::Int(1), Value::Timestamp(777)],
        )
        .unwrap();
        let ev = e.binlog().read_from(Lsn(0)).last().unwrap();
        match &ev.payload {
            EventPayload::Statement { params, .. } => {
                assert_eq!(
                    params,
                    &[Value::Int(1), Value::Int(777)],
                    "timestamp ships as the bare integer the substituted literal produced"
                );
            }
            other => panic!("unexpected payload {other:?}"),
        }
        // And a slave applying it regains the TIMESTAMP affinity via coercion.
        let mut slave = Engine::new_slave();
        for ev in e.binlog_from(Lsn(0)).to_vec() {
            slave.apply_event(&ev, 0).unwrap();
        }
        let mut ss = Session::new();
        let r = slave
            .execute(&mut ss, "SELECT ts FROM hb WHERE id = 1", &[])
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Timestamp(777));
    }

    #[test]
    fn log_arity_errors_match_substitution_errors() {
        let (mut e, mut s) = master();
        e.execute(&mut s, "INSERT INTO users (name) VALUES ('z')", &[])
            .unwrap();
        // Too few parameters, with the placeholder dodging evaluation via OR
        // short-circuit: only the logging-time arity check can catch it, and
        // its message must match what literal substitution used to raise.
        let sql = "UPDATE users SET score = 1 WHERE id = 1 OR name = ?";
        let err = e.execute(&mut s, sql, &[]).unwrap_err();
        assert_eq!(
            err.to_string(),
            substitute_params(sql, &[]).unwrap_err().to_string()
        );
        // Too many parameters: evaluation ignores the extras, the logging
        // arity check must not.
        let sql = "UPDATE users SET score = ? WHERE id = 1";
        let params = [Value::from(2.0), Value::from(3.0)];
        let err = e.execute(&mut s, sql, &params).unwrap_err();
        assert_eq!(
            err.to_string(),
            substitute_params(sql, &params).unwrap_err().to_string()
        );
    }

    #[test]
    fn create_index_invalidates_cached_select_plan() {
        let (mut e, mut s) = master();
        e.execute_batch(
            &mut s,
            "CREATE TABLE items (id INT PRIMARY KEY, cat INT);
             INSERT INTO items VALUES (1, 10), (2, 10), (3, 20)",
        )
        .unwrap();
        let sql = "SELECT id FROM items WHERE cat = ? ORDER BY id";
        let r1 = e.execute(&mut s, sql, &[Value::Int(10)]).unwrap();
        assert_eq!(r1.rows.len(), 2);
        // The cached plan full-scans; after CREATE INDEX the statement must
        // re-plan to an index lookup (observable via rows_examined).
        assert_eq!(r1.rows_examined, 3);
        e.execute(&mut s, "CREATE INDEX idx_cat ON items (cat)", &[])
            .unwrap();
        let r2 = e.execute(&mut s, sql, &[Value::Int(10)]).unwrap();
        assert_eq!(r2.rows, r1.rows, "same answer either way");
        assert_eq!(r2.rows_examined, 2, "stale full-scan plan was not reused");
    }

    #[test]
    fn drop_and_recreate_invalidates_cached_plan() {
        let (mut e, mut s) = master();
        e.execute_batch(
            &mut s,
            "CREATE TABLE tmp (id INT PRIMARY KEY, a INT);
             INSERT INTO tmp VALUES (1, 5)",
        )
        .unwrap();
        let sql = "SELECT a FROM tmp WHERE id = 1";
        assert_eq!(
            e.execute(&mut s, sql, &[]).unwrap().rows,
            vec![vec![Value::Int(5)]]
        );
        // Re-create with a different column layout under the same name.
        e.execute_batch(
            &mut s,
            "DROP TABLE tmp;
             CREATE TABLE tmp (id INT PRIMARY KEY, b INT, a INT);
             INSERT INTO tmp VALUES (1, 6, 7)",
        )
        .unwrap();
        assert_eq!(
            e.execute(&mut s, sql, &[]).unwrap().rows,
            vec![vec![Value::Int(7)]],
            "plan re-bound against the new schema"
        );
    }

    #[test]
    fn errors_are_clean() {
        let (mut e, mut s) = master();
        assert!(matches!(
            e.execute(&mut s, "SELECT * FROM missing", &[]),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(matches!(
            e.execute(&mut s, "INSERT INTO users (nope) VALUES (1)", &[]),
            Err(SqlError::UnknownColumn(_))
        ));
        assert!(matches!(
            e.execute(&mut s, "THIS IS NOT SQL", &[]),
            Err(SqlError::Parse(_))
        ));
    }
}
