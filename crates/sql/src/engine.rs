//! The engine facade: sessions, transactions, autocommit, binlogging, and
//! replica apply.

use crate::ast::Statement;
use crate::binlog::{Binlog, BinlogEvent, BinlogFormat, EventPayload, Lsn};
use crate::error::SqlError;
use crate::exec::{
    exec_delete, exec_insert, exec_select, exec_update, Catalog, QueryResult, RowChange,
    RowChangeKind, Undo, UndoEntry, WriteOutcome,
};
use crate::expr::EvalCtx;
use crate::parser::parse;
use crate::storage::Table;
use crate::value::Value;

/// A client session: clock context, transaction state, pending binlog
/// payloads. The *caller* supplies `now_micros` (ultimately from the owning
/// VM's drifting clock) before each statement — the engine never reads host
/// time.
#[derive(Debug, Default)]
pub struct Session {
    /// Local wall-clock microseconds used by `NOW_MICROS()` and as the
    /// commit timestamp of binlog events.
    pub now_micros: i64,
    in_txn: bool,
    undo: Vec<UndoEntry>,
    pending: Vec<EventPayload>,
    last_insert_id: Option<i64>,
}

impl Session {
    /// Fresh autocommit session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is an explicit transaction open?
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// The auto-increment id assigned by the most recent INSERT.
    pub fn last_insert_id(&self) -> Option<i64> {
        self.last_insert_id
    }
}

/// Role for [`Engine::fork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForkRole {
    /// Fork into a master logging with the given format.
    Master(BinlogFormat),
    /// Fork into a slave (no binlogging).
    Slave,
}

/// The database engine: catalog + binary log.
///
/// One engine instance models one MySQL server (master or slave). Masters
/// are constructed with [`Engine::new_master`] and log writes; slaves use
/// [`Engine::new_slave`] and apply shipped events without re-logging
/// (MySQL's default `log_slave_updates = OFF`).
#[derive(Debug)]
pub struct Engine {
    catalog: Catalog,
    binlog: Binlog,
    format: BinlogFormat,
    log_writes: bool,
}

impl Engine {
    /// A master engine with the given binlog format.
    pub fn new_master(format: BinlogFormat) -> Self {
        Self {
            catalog: Catalog::new(),
            binlog: Binlog::new(),
            format,
            log_writes: true,
        }
    }

    /// A slave engine (does not produce binlog events).
    pub fn new_slave() -> Self {
        Self {
            catalog: Catalog::new(),
            binlog: Binlog::new(),
            format: BinlogFormat::Statement,
            log_writes: false,
        }
    }

    /// The binlog (master side).
    pub fn binlog(&self) -> &Binlog {
        &self.binlog
    }

    /// Fork a copy of this engine's *data* (catalog incl. indexes and
    /// auto-increment state) with a fresh, empty binlog.
    ///
    /// This is how the experiments realize the paper's requirement that
    /// "both the master and slaves should start with a pre-loaded,
    /// fully-synchronized database" (§III-B): one template engine is loaded
    /// once, then forked into the master and every slave of each run.
    pub fn fork(&self, role: ForkRole) -> Engine {
        match role {
            ForkRole::Master(format) => Engine {
                catalog: self.catalog.clone(),
                binlog: Binlog::new(),
                format,
                log_writes: true,
            },
            ForkRole::Slave => Engine {
                catalog: self.catalog.clone(),
                binlog: Binlog::new(),
                format: BinlogFormat::Statement,
                log_writes: false,
            },
        }
    }

    /// Promote a slave engine to master in place (failover): it keeps its
    /// data, starts logging writes, and opens a fresh binlog. Writes on the
    /// failed old master that this replica never applied are *lost* — the
    /// asynchronous-replication data-loss window of §II ("once the updated
    /// replica goes offline before duplicating data, data loss may occur").
    pub fn promote_to_master(&mut self, format: BinlogFormat) {
        self.format = format;
        self.log_writes = true;
        self.binlog = Binlog::new();
    }

    /// Whether this engine logs writes (true for masters).
    pub fn is_master(&self) -> bool {
        self.log_writes
    }

    /// Binlog format in use.
    pub fn binlog_format(&self) -> BinlogFormat {
        self.format
    }

    /// Does a table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.contains_key(&name.to_ascii_lowercase())
    }

    /// Row count of a table (testing/monitoring aid).
    pub fn table_rows(&self, name: &str) -> Option<usize> {
        self.catalog
            .get(&name.to_ascii_lowercase())
            .map(Table::row_count)
    }

    /// Execute one statement with positional parameters.
    pub fn execute(
        &mut self,
        session: &mut Session,
        sql: &str,
        params: &[Value],
    ) -> Result<QueryResult, SqlError> {
        let stmt = parse(sql)?;
        self.execute_stmt(session, &stmt, sql, params)
    }

    /// Execute a semicolon-separated batch (DDL scripts, loaders). Returns
    /// the last statement's result. Parameters are not allowed in batches.
    pub fn execute_batch(
        &mut self,
        session: &mut Session,
        sql: &str,
    ) -> Result<QueryResult, SqlError> {
        let mut last = QueryResult::default();
        for piece in split_statements(sql) {
            let trimmed = piece.trim();
            if trimmed.is_empty() {
                continue;
            }
            last = self.execute(session, trimmed, &[])?;
        }
        Ok(last)
    }

    fn execute_stmt(
        &mut self,
        session: &mut Session,
        stmt: &Statement,
        sql: &str,
        params: &[Value],
    ) -> Result<QueryResult, SqlError> {
        let ctx = EvalCtx {
            params,
            now_micros: session.now_micros,
        };
        match stmt {
            Statement::Select(sel) => exec_select(&self.catalog, sel, &ctx),
            Statement::Explain(sel) => crate::exec::explain_select(&self.catalog, sel),
            Statement::Begin => {
                if session.in_txn {
                    return Err(SqlError::Transaction("transaction already open".into()));
                }
                session.in_txn = true;
                Ok(QueryResult::default())
            }
            Statement::Commit => {
                if !session.in_txn {
                    return Err(SqlError::Transaction("COMMIT without BEGIN".into()));
                }
                session.in_txn = false;
                session.undo.clear();
                self.flush_pending(session);
                Ok(QueryResult::default())
            }
            Statement::Rollback => {
                if !session.in_txn {
                    return Err(SqlError::Transaction("ROLLBACK without BEGIN".into()));
                }
                session.in_txn = false;
                session.pending.clear();
                let undo = std::mem::take(&mut session.undo);
                self.apply_undo(undo);
                Ok(QueryResult::default())
            }
            Statement::CreateTable {
                schema,
                if_not_exists,
            } => {
                let key = schema.name.to_ascii_lowercase();
                if self.catalog.contains_key(&key) {
                    if *if_not_exists {
                        return Ok(QueryResult::default());
                    }
                    return Err(SqlError::DuplicateTable(schema.name.clone()));
                }
                self.catalog.insert(key, Table::new(schema.clone()));
                self.log_ddl(session, sql, params)?;
                Ok(QueryResult::default())
            }
            Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            } => {
                let t = crate::exec::get_table_mut(&mut self.catalog, table)?;
                let col = t
                    .schema()
                    .column_index(column)
                    .ok_or_else(|| SqlError::UnknownColumn(column.clone()))?;
                t.create_index(name.clone(), col, *unique)?;
                self.log_ddl(session, sql, params)?;
                Ok(QueryResult::default())
            }
            Statement::DropTable { name, if_exists } => {
                let key = name.to_ascii_lowercase();
                if self.catalog.remove(&key).is_none() && !*if_exists {
                    return Err(SqlError::UnknownTable(name.clone()));
                }
                self.log_ddl(session, sql, params)?;
                Ok(QueryResult::default())
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let out = exec_insert(&mut self.catalog, table, columns, rows, &ctx)?;
                self.finish_write(session, sql, params, out)
            }
            Statement::Update {
                table,
                sets,
                filter,
            } => {
                let out = exec_update(&mut self.catalog, table, sets, filter.as_ref(), &ctx)?;
                self.finish_write(session, sql, params, out)
            }
            Statement::Delete { table, filter } => {
                let out = exec_delete(&mut self.catalog, table, filter.as_ref(), &ctx)?;
                self.finish_write(session, sql, params, out)
            }
        }
    }

    /// Record a write's binlog payload and undo, honoring autocommit.
    fn finish_write(
        &mut self,
        session: &mut Session,
        sql: &str,
        params: &[Value],
        out: WriteOutcome,
    ) -> Result<QueryResult, SqlError> {
        if out.result.last_insert_id.is_some() {
            session.last_insert_id = out.result.last_insert_id;
        }
        if self.log_writes && out.result.rows_affected > 0 {
            let payload = match self.format {
                BinlogFormat::Statement => EventPayload::Statement {
                    sql: substitute_params(sql, params)?,
                },
                BinlogFormat::Row => EventPayload::Rows {
                    changes: out.changes,
                },
            };
            session.pending.push(payload);
        }
        if session.in_txn {
            session.undo.extend(out.undo);
        } else {
            self.flush_pending(session);
        }
        Ok(out.result)
    }

    /// DDL is always statement-logged and implicitly commits (as in MySQL).
    fn log_ddl(
        &mut self,
        session: &mut Session,
        sql: &str,
        params: &[Value],
    ) -> Result<(), SqlError> {
        if self.log_writes {
            session.pending.push(EventPayload::Statement {
                sql: substitute_params(sql, params)?,
            });
        }
        session.undo.clear();
        session.in_txn = false;
        self.flush_pending(session);
        Ok(())
    }

    fn flush_pending(&mut self, session: &mut Session) {
        for payload in session.pending.drain(..) {
            self.binlog.append(session.now_micros, payload);
        }
        session.undo.clear();
    }

    fn apply_undo(&mut self, undo: Vec<UndoEntry>) {
        for entry in undo.into_iter().rev() {
            let Some(table) = self.catalog.get_mut(&entry.table) else {
                continue; // table dropped by DDL after the write; nothing to undo
            };
            match entry.undo {
                Undo::Inserted(rid) => {
                    table.delete(rid);
                }
                Undo::Updated(rid, old) => {
                    let _ = table.update(rid, old);
                }
                Undo::Deleted(rid, old) => {
                    table.restore(rid, old);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Replica apply
    // ------------------------------------------------------------------

    /// Apply one shipped binlog event on a replica. `now_micros` is the
    /// *replica's* local clock — for statement events this re-evaluates
    /// `NOW_MICROS()` against the slave clock, producing the paper's
    /// measurable heartbeat skew.
    pub fn apply_event(
        &mut self,
        event: &BinlogEvent,
        now_micros: i64,
    ) -> Result<QueryResult, SqlError> {
        match &event.payload {
            EventPayload::Statement { sql } => {
                let mut session = Session {
                    now_micros,
                    ..Session::default()
                };
                self.execute(&mut session, sql, &[])
            }
            EventPayload::Rows { changes } => {
                let mut res = QueryResult::default();
                for change in changes {
                    self.apply_row_change(change)?;
                    res.rows_affected += 1;
                    res.rows_examined += 1;
                }
                Ok(res)
            }
        }
    }

    fn apply_row_change(&mut self, change: &RowChange) -> Result<(), SqlError> {
        let table = crate::exec::get_table_mut(&mut self.catalog, &change.table)?;
        let pk = table.schema().pk_index();
        let find = |table: &Table, image: &[Value]| -> Option<crate::storage::RowId> {
            match pk {
                Some(pk_idx) => table.pk_lookup(&image[pk_idx]),
                None => table
                    .scan()
                    .find(|(_, row)| row.as_slice() == image)
                    .map(|(rid, _)| rid),
            }
        };
        match &change.kind {
            RowChangeKind::Insert { row } => {
                table.insert(row.clone())?;
            }
            RowChangeKind::Update { before, after } => {
                let rid = find(table, before).ok_or_else(|| {
                    SqlError::Constraint(format!(
                        "row-apply update: no matching row in '{}'",
                        change.table
                    ))
                })?;
                table.update(rid, after.clone())?;
            }
            RowChangeKind::Delete { row } => {
                let rid = find(table, row).ok_or_else(|| {
                    SqlError::Constraint(format!(
                        "row-apply delete: no matching row in '{}'",
                        change.table
                    ))
                })?;
                table.delete(rid);
            }
        }
        Ok(())
    }

    /// Read binlog events at or after `from` (the slave I/O thread's fetch).
    pub fn binlog_from(&self, from: Lsn) -> &[BinlogEvent] {
        self.binlog.read_from(from)
    }
}

/// Substitute `?` placeholders with literal values (for statement-based
/// binlogging). Quoted strings are respected.
pub fn substitute_params(sql: &str, params: &[Value]) -> Result<String, SqlError> {
    let mut out = String::with_capacity(sql.len() + params.len() * 8);
    let mut idx = 0usize;
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                out.push(c);
                // copy until closing quote, handling '' escapes
                while let Some(sc) = chars.next() {
                    out.push(sc);
                    if sc == '\'' {
                        if chars.peek() == Some(&'\'') {
                            out.push(chars.next().expect("peeked"));
                        } else {
                            break;
                        }
                    }
                }
            }
            '?' => {
                let v = params.get(idx).ok_or_else(|| {
                    SqlError::BadParameter(format!("placeholder {} not bound", idx + 1))
                })?;
                out.push_str(&v.to_literal());
                idx += 1;
            }
            other => out.push(other),
        }
    }
    if idx != params.len() {
        return Err(SqlError::BadParameter(format!(
            "{} parameters bound, {} placeholders found",
            params.len(),
            idx
        )));
    }
    Ok(out)
}

/// Split a batch on top-level semicolons (string literals respected).
pub fn split_statements(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                cur.push(c);
                while let Some(sc) = chars.next() {
                    cur.push(sc);
                    if sc == '\'' {
                        if chars.peek() == Some(&'\'') {
                            cur.push(chars.next().expect("peeked"));
                        } else {
                            break;
                        }
                    }
                }
            }
            ';' => {
                out.push(std::mem::take(&mut cur));
            }
            other => cur.push(other),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn master() -> (Engine, Session) {
        let mut e = Engine::new_master(BinlogFormat::Statement);
        let mut s = Session::new();
        e.execute_batch(
            &mut s,
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name VARCHAR(64) NOT NULL, score DOUBLE);
             CREATE INDEX idx_name ON users (name);",
        )
        .unwrap();
        (e, s)
    }

    #[test]
    fn end_to_end_crud() {
        let (mut e, mut s) = master();
        let r = e
            .execute(
                &mut s,
                "INSERT INTO users (name, score) VALUES (?, ?)",
                &[Value::from("alice"), Value::from(1.5)],
            )
            .unwrap();
        assert_eq!(r.rows_affected, 1);
        assert_eq!(r.last_insert_id, Some(1));

        e.execute(
            &mut s,
            "INSERT INTO users (name, score) VALUES ('bob', 2.0), ('carol', 3.0)",
            &[],
        )
        .unwrap();

        let r = e
            .execute(
                &mut s,
                "SELECT name FROM users WHERE score >= 2 ORDER BY name",
                &[],
            )
            .unwrap();
        assert_eq!(r.columns, vec!["name"]);
        assert_eq!(
            r.rows,
            vec![vec![Value::from("bob")], vec![Value::from("carol")]]
        );

        let r = e
            .execute(
                &mut s,
                "UPDATE users SET score = score + 1 WHERE name = 'bob'",
                &[],
            )
            .unwrap();
        assert_eq!(r.rows_affected, 1);

        let r = e
            .execute(&mut s, "DELETE FROM users WHERE id = 1", &[])
            .unwrap();
        assert_eq!(r.rows_affected, 1);
        assert_eq!(e.table_rows("users"), Some(2));
    }

    #[test]
    fn select_with_join_and_aggregate() {
        let (mut e, mut s) = master();
        e.execute_batch(
            &mut s,
            "CREATE TABLE orders (id INT PRIMARY KEY, user_id INT, total DOUBLE);
             CREATE INDEX idx_user ON orders (user_id);
             INSERT INTO users (name, score) VALUES ('a', 0.0), ('b', 0.0);
             INSERT INTO orders VALUES (1, 1, 10.0), (2, 1, 20.0), (3, 2, 5.0)",
        )
        .unwrap();
        let r = e
            .execute(
                &mut s,
                "SELECT u.name, COUNT(*) AS n, SUM(o.total) AS total \
                 FROM users u INNER JOIN orders o ON o.user_id = u.id \
                 GROUP BY u.id ORDER BY total DESC",
                &[],
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::from("a"));
        assert_eq!(r.rows[0][1], Value::Int(2));
        assert_eq!(r.rows[0][2], Value::Double(30.0));
    }

    #[test]
    fn left_join_pads_nulls() {
        let (mut e, mut s) = master();
        e.execute_batch(
            &mut s,
            "CREATE TABLE orders (id INT PRIMARY KEY, user_id INT);
             INSERT INTO users (name) VALUES ('a'), ('b');
             INSERT INTO orders VALUES (1, 1)",
        )
        .unwrap();
        let r = e
            .execute(
                &mut s,
                "SELECT u.name, o.id FROM users u LEFT JOIN orders o ON o.user_id = u.id ORDER BY u.name",
                &[],
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[1], vec![Value::from("b"), Value::Null]);
    }

    #[test]
    fn transaction_rollback_restores_state() {
        let (mut e, mut s) = master();
        e.execute(&mut s, "INSERT INTO users (name) VALUES ('keep')", &[])
            .unwrap();
        e.execute(&mut s, "BEGIN", &[]).unwrap();
        e.execute(&mut s, "INSERT INTO users (name) VALUES ('gone')", &[])
            .unwrap();
        e.execute(
            &mut s,
            "UPDATE users SET name = 'kept?' WHERE name = 'keep'",
            &[],
        )
        .unwrap();
        e.execute(&mut s, "DELETE FROM users WHERE name = 'kept?'", &[])
            .unwrap_or_else(|_| panic!());
        e.execute(&mut s, "ROLLBACK", &[]).unwrap();
        let r = e
            .execute(&mut s, "SELECT name FROM users ORDER BY name", &[])
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::from("keep")]]);
        // Rolled-back work must not reach the binlog.
        let binlogged: Vec<_> = e
            .binlog()
            .read_from(Lsn(0))
            .iter()
            .filter(|ev| match &ev.payload {
                EventPayload::Statement { sql } => sql.contains("gone"),
                _ => false,
            })
            .collect();
        assert!(binlogged.is_empty());
    }

    #[test]
    fn transaction_commit_logs_all_statements() {
        let (mut e, mut s) = master();
        let before = e.binlog().len();
        e.execute(&mut s, "BEGIN", &[]).unwrap();
        e.execute(&mut s, "INSERT INTO users (name) VALUES ('x')", &[])
            .unwrap();
        e.execute(&mut s, "INSERT INTO users (name) VALUES ('y')", &[])
            .unwrap();
        assert_eq!(e.binlog().len(), before, "nothing logged before commit");
        e.execute(&mut s, "COMMIT", &[]).unwrap();
        assert_eq!(e.binlog().len(), before + 2);
    }

    #[test]
    fn txn_state_errors() {
        let (mut e, mut s) = master();
        assert!(e.execute(&mut s, "COMMIT", &[]).is_err());
        assert!(e.execute(&mut s, "ROLLBACK", &[]).is_err());
        e.execute(&mut s, "BEGIN", &[]).unwrap();
        assert!(e.execute(&mut s, "BEGIN", &[]).is_err());
    }

    #[test]
    fn statement_replication_reexecutes_now_micros() {
        let mut master = Engine::new_master(BinlogFormat::Statement);
        let mut ms = Session::new();
        ms.now_micros = 1_000;
        master
            .execute_batch(
                &mut ms,
                "CREATE TABLE heartbeat (id INT PRIMARY KEY, ts TIMESTAMP)",
            )
            .unwrap();
        master
            .execute(
                &mut ms,
                "INSERT INTO heartbeat (id, ts) VALUES (?, NOW_MICROS())",
                &[Value::Int(1)],
            )
            .unwrap();

        let mut slave = Engine::new_slave();
        // Slave clock is 5000 µs ahead.
        for ev in master.binlog_from(Lsn(0)).to_vec() {
            slave.apply_event(&ev, 6_000).unwrap();
        }
        let mut ss = Session::new();
        let m = master
            .execute(&mut ms, "SELECT ts FROM heartbeat WHERE id = 1", &[])
            .unwrap();
        let sl = slave
            .execute(&mut ss, "SELECT ts FROM heartbeat WHERE id = 1", &[])
            .unwrap();
        assert_eq!(m.rows[0][0], Value::Timestamp(1_000));
        assert_eq!(
            sl.rows[0][0],
            Value::Timestamp(6_000),
            "slave re-evaluated NOW_MICROS with its own clock"
        );
    }

    #[test]
    fn row_replication_copies_exact_images() {
        let mut master = Engine::new_master(BinlogFormat::Row);
        let mut ms = Session::new();
        ms.now_micros = 1_000;
        master
            .execute_batch(&mut ms, "CREATE TABLE t (id INT PRIMARY KEY, ts TIMESTAMP)")
            .unwrap();
        master
            .execute(&mut ms, "INSERT INTO t VALUES (1, NOW_MICROS())", &[])
            .unwrap();
        master
            .execute(&mut ms, "UPDATE t SET ts = 42 WHERE id = 1", &[])
            .unwrap();

        let mut slave = Engine::new_slave();
        for ev in master.binlog_from(Lsn(0)).to_vec() {
            slave.apply_event(&ev, 999_999).unwrap();
        }
        let mut ss = Session::new();
        let r = slave.execute(&mut ss, "SELECT ts FROM t", &[]).unwrap();
        assert_eq!(
            r.rows[0][0],
            Value::Timestamp(42),
            "row format ships master values verbatim"
        );
    }

    #[test]
    fn substitute_params_respects_strings() {
        let sql = "INSERT INTO t VALUES ('a?b', ?, '''?', ?)";
        let out = substitute_params(sql, &[Value::Int(1), Value::from("x")]).unwrap();
        assert_eq!(out, "INSERT INTO t VALUES ('a?b', 1, '''?', 'x')");
    }

    #[test]
    fn substitute_params_arity_checked() {
        assert!(substitute_params("SELECT ?", &[]).is_err());
        assert!(substitute_params("SELECT ?", &[Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn split_statements_respects_strings() {
        let parts = split_statements("INSERT INTO t VALUES ('a;b'); SELECT 1");
        assert_eq!(parts.len(), 2);
        assert!(parts[0].contains("a;b"));
    }

    #[test]
    fn ddl_implicitly_commits() {
        let (mut e, mut s) = master();
        e.execute(&mut s, "BEGIN", &[]).unwrap();
        e.execute(&mut s, "INSERT INTO users (name) VALUES ('x')", &[])
            .unwrap();
        e.execute(&mut s, "CREATE TABLE other (id INT PRIMARY KEY)", &[])
            .unwrap();
        assert!(!s.in_transaction(), "DDL closed the transaction");
        // The pending insert was committed (logged), not rolled back.
        assert!(e.binlog().read_from(Lsn(0)).iter().any(
            |ev| matches!(&ev.payload, EventPayload::Statement { sql } if sql.contains("'x'"))
        ));
    }

    #[test]
    fn errors_are_clean() {
        let (mut e, mut s) = master();
        assert!(matches!(
            e.execute(&mut s, "SELECT * FROM missing", &[]),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(matches!(
            e.execute(&mut s, "INSERT INTO users (nope) VALUES (1)", &[]),
            Err(SqlError::UnknownColumn(_))
        ));
        assert!(matches!(
            e.execute(&mut s, "THIS IS NOT SQL", &[]),
            Err(SqlError::Parse(_))
        ));
    }
}
