//! Executor edge cases: ordering, projection, joins, aggregates, coercion.

use amdb_sql::{BinlogFormat, Engine, Session, SqlError, Value};

fn engine() -> (Engine, Session) {
    let mut e = Engine::new_master(BinlogFormat::Statement);
    let mut s = Session::new();
    e.execute_batch(
        &mut s,
        "CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score DOUBLE, flag BOOLEAN);
         INSERT INTO t VALUES
           (1, 'delta', 4.0, TRUE),
           (2, 'alpha', 2.0, FALSE),
           (3, 'charlie', 1.0, TRUE),
           (4, 'bravo', 3.0, FALSE),
           (5, NULL, NULL, TRUE)",
    )
    .expect("setup");
    (e, s)
}

#[test]
fn order_by_output_alias() {
    let (mut e, mut s) = engine();
    let r = e
        .execute(
            &mut s,
            "SELECT id, score * 2 AS doubled FROM t WHERE score IS NOT NULL ORDER BY doubled DESC",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1), "highest doubled score first");
    assert_eq!(r.rows[0][1], Value::Double(8.0));
}

#[test]
fn order_by_multiple_keys_and_nulls_first() {
    let (mut e, mut s) = engine();
    let r = e
        .execute(
            &mut s,
            "SELECT id FROM t ORDER BY flag DESC, score ASC",
            &[],
        )
        .unwrap();
    // flag=true group first (ids 1,3,5); within it score ASC with NULL first.
    let ids: Vec<i64> = r
        .rows
        .iter()
        .map(|row| match row[0] {
            Value::Int(i) => i,
            _ => panic!(),
        })
        .collect();
    assert_eq!(ids, vec![5, 3, 1, 2, 4]);
}

#[test]
fn limit_offset_beyond_bounds() {
    let (mut e, mut s) = engine();
    let r = e
        .execute(
            &mut s,
            "SELECT id FROM t ORDER BY id LIMIT 10 OFFSET 3",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    let r = e.execute(&mut s, "SELECT id FROM t LIMIT 0", &[]).unwrap();
    assert!(r.rows.is_empty());
    let r = e
        .execute(&mut s, "SELECT id FROM t LIMIT 3 OFFSET 99", &[])
        .unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn mysql_style_limit_comma() {
    let (mut e, mut s) = engine();
    let r = e
        .execute(&mut s, "SELECT id FROM t ORDER BY id LIMIT 1, 2", &[])
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::Int(2)], vec![Value::Int(3)]],
        "LIMIT offset, count"
    );
}

#[test]
fn ambiguous_unqualified_column_is_an_error() {
    let (mut e, mut s) = engine();
    // Note: ambiguity is detected at evaluation time, so the join must
    // produce at least one row (a column binder would catch it earlier).
    e.execute_batch(
        &mut s,
        "CREATE TABLE u (id INT PRIMARY KEY, other TEXT);
         INSERT INTO u VALUES (1, 'x')",
    )
    .unwrap();
    let err = e
        .execute(&mut s, "SELECT id FROM t INNER JOIN u ON t.id = u.id", &[])
        .unwrap_err();
    assert!(
        matches!(err, SqlError::UnknownColumn(ref m) if m.contains("ambiguous")),
        "got {err}"
    );
}

#[test]
fn aggregates_over_empty_and_null_inputs() {
    let (mut e, mut s) = engine();
    let r = e
        .execute(
            &mut s,
            "SELECT COUNT(*), COUNT(score), SUM(score), AVG(score), MIN(score), MAX(score) \
             FROM t WHERE id > 100",
            &[],
        )
        .unwrap();
    // Global aggregate over zero rows: one row, COUNTs 0, the rest NULL.
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert_eq!(r.rows[0][1], Value::Int(0));
    assert_eq!(r.rows[0][2], Value::Null);
    assert_eq!(r.rows[0][3], Value::Null);

    // COUNT(col) skips NULLs; SUM/AVG ignore them.
    let r = e
        .execute(
            &mut s,
            "SELECT COUNT(*), COUNT(score), SUM(score), AVG(score) FROM t",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(5));
    assert_eq!(r.rows[0][1], Value::Int(4));
    assert_eq!(r.rows[0][2], Value::Double(10.0));
    assert_eq!(r.rows[0][3], Value::Double(2.5));
}

#[test]
fn min_max_over_text() {
    let (mut e, mut s) = engine();
    let r = e
        .execute(&mut s, "SELECT MIN(name), MAX(name) FROM t", &[])
        .unwrap();
    assert_eq!(r.rows[0][0], Value::from("alpha"));
    assert_eq!(r.rows[0][1], Value::from("delta"));
}

#[test]
fn update_with_self_referencing_expression() {
    let (mut e, mut s) = engine();
    e.execute(
        &mut s,
        "UPDATE t SET score = score * 10 + id WHERE score IS NOT NULL",
        &[],
    )
    .unwrap();
    let r = e
        .execute(&mut s, "SELECT score FROM t WHERE id = 2", &[])
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Double(22.0));
}

#[test]
fn update_affecting_zero_rows_logs_nothing() {
    let (mut e, mut s) = engine();
    let before = e.binlog().len();
    let r = e
        .execute(&mut s, "UPDATE t SET score = 0 WHERE id = 999", &[])
        .unwrap();
    assert_eq!(r.rows_affected, 0);
    assert_eq!(e.binlog().len(), before, "no-op write not binlogged");
}

#[test]
fn three_way_join_with_filters() {
    let (mut e, mut s) = engine();
    e.execute_batch(
        &mut s,
        "CREATE TABLE a (id INT PRIMARY KEY, t_id INT);
         CREATE INDEX idx_a ON a (t_id);
         CREATE TABLE b (id INT PRIMARY KEY, a_id INT);
         CREATE INDEX idx_b ON b (a_id);
         INSERT INTO a VALUES (10, 1), (11, 2), (12, 1);
         INSERT INTO b VALUES (100, 10), (101, 10), (102, 11)",
    )
    .unwrap();
    let r = e
        .execute(
            &mut s,
            "SELECT b.id FROM t INNER JOIN a ON a.t_id = t.id \
             INNER JOIN b ON b.a_id = a.id \
             WHERE t.id = 1 ORDER BY b.id",
            &[],
        )
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::Int(100)], vec![Value::Int(101)]],
        "only rows reachable from t.id = 1 via a.id = 10/12"
    );
}

#[test]
fn select_without_from() {
    let (mut e, mut s) = engine();
    let r = e
        .execute(&mut s, "SELECT 1 + 1 AS two, UPPER('x')", &[])
        .unwrap();
    assert_eq!(r.columns.as_ref(), ["two", "upper"]);
    assert_eq!(r.rows, vec![vec![Value::Int(2), Value::from("X")]]);
}

#[test]
fn comparison_with_null_filters_row_out() {
    let (mut e, mut s) = engine();
    // score = NULL is unknown, never true: row 5 excluded both ways.
    let r = e
        .execute(
            &mut s,
            "SELECT COUNT(*) FROM t WHERE score > 0 OR score <= 0",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(4));
}

#[test]
fn rows_examined_reflects_access_path() {
    let (mut e, mut s) = engine();
    let pk = e
        .execute(&mut s, "SELECT name FROM t WHERE id = 3", &[])
        .unwrap();
    assert_eq!(pk.rows_examined, 1, "pk lookup touches one row");
    let scan = e.execute(&mut s, "SELECT name FROM t", &[]).unwrap();
    assert_eq!(scan.rows_examined, 5, "full scan touches all rows");
}

#[test]
fn in_list_with_params() {
    let (mut e, mut s) = engine();
    let r = e
        .execute(
            &mut s,
            "SELECT id FROM t WHERE id IN (?, ?, ?) ORDER BY id",
            &[Value::Int(1), Value::Int(3), Value::Int(99)],
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
}

#[test]
fn left_join_where_on_inner_column_filters_null_rows() {
    let (mut e, mut s) = engine();
    e.execute_batch(
        &mut s,
        "CREATE TABLE x (id INT PRIMARY KEY, t_id INT);
         INSERT INTO x VALUES (1, 1)",
    )
    .unwrap();
    // WHERE on the right table's column removes NULL-extended rows
    // (standard SQL semantics: WHERE after join).
    let r = e
        .execute(
            &mut s,
            "SELECT t.id FROM t LEFT JOIN x ON x.t_id = t.id WHERE x.id IS NOT NULL",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
    // Without the filter all 5 t-rows survive.
    let r = e
        .execute(
            &mut s,
            "SELECT COUNT(*) FROM t LEFT JOIN x ON x.t_id = t.id",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(5));
}
