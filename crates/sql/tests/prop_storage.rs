//! Property tests over table storage: after any sequence of inserts,
//! updates and deletes, secondary indexes stay exactly consistent with a
//! full scan, and primary-key lookups agree with the heap.

use amdb_sql::schema::{Column, TableSchema};
use amdb_sql::storage::{RowId, Table};
use amdb_sql::value::{DataType, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, group: i64 },
    UpdateGroup { victim: usize, group: i64 },
    Delete { victim: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..200i64, 0..10i64).prop_map(|(id, group)| Op::Insert { id, group }),
        (any::<usize>(), 0..10i64).prop_map(|(victim, group)| Op::UpdateGroup { victim, group }),
        any::<usize>().prop_map(|victim| Op::Delete { victim }),
    ]
}

fn table() -> Table {
    let schema = TableSchema::new(
        "t",
        vec![
            Column::new("id", DataType::Int).primary_key(),
            Column::new("grp", DataType::Int),
        ],
    )
    .expect("valid schema");
    let mut t = Table::new(schema);
    t.create_index("idx_grp", 1, false).expect("index");
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexes_stay_consistent(ops in prop::collection::vec(arb_op(), 0..120)) {
        let mut t = table();
        // Shadow model: id -> (rid, group).
        let mut model: BTreeMap<i64, (RowId, i64)> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert { id, group } => {
                    let res = t.insert(vec![Value::Int(id), Value::Int(group)]);
                    match model.entry(id) {
                        std::collections::btree_map::Entry::Occupied(_) => {
                            prop_assert!(res.is_err(), "duplicate pk must be rejected");
                        }
                        std::collections::btree_map::Entry::Vacant(e) => {
                            let rid = res.expect("insert succeeds");
                            e.insert((rid, group));
                        }
                    }
                }
                Op::UpdateGroup { victim, group } => {
                    if model.is_empty() { continue; }
                    let keys: Vec<i64> = model.keys().copied().collect();
                    let id = keys[victim % keys.len()];
                    let (rid, _) = model[&id];
                    t.update(rid, vec![Value::Int(id), Value::Int(group)])
                        .expect("update succeeds");
                    model.insert(id, (rid, group));
                }
                Op::Delete { victim } => {
                    if model.is_empty() { continue; }
                    let keys: Vec<i64> = model.keys().copied().collect();
                    let id = keys[victim % keys.len()];
                    let (rid, _) = model.remove(&id).expect("present");
                    prop_assert!(t.delete(rid).is_some());
                }
            }

            // Invariant 1: row count matches the model.
            prop_assert_eq!(t.row_count(), model.len());

            // Invariant 2: pk lookups agree with the model.
            for (&id, &(rid, _)) in &model {
                prop_assert_eq!(t.pk_lookup(&Value::Int(id)), Some(rid));
            }

            // Invariant 3: the secondary index contains exactly the scan's
            // group distribution.
            let ix = t.index_on(1).expect("index exists");
            for g in 0..10i64 {
                let via_index = ix.lookup_eq(&Value::Int(g)).len();
                let via_scan = t
                    .scan()
                    .filter(|(_, row)| row[1] == Value::Int(g))
                    .count();
                prop_assert_eq!(via_index, via_scan, "group {} index drift", g);
            }
        }
    }

    #[test]
    fn restore_inverts_delete(ids in prop::collection::btree_set(0..100i64, 1..30)) {
        let mut t = table();
        let mut rids = Vec::new();
        for &id in &ids {
            rids.push(t.insert(vec![Value::Int(id), Value::Int(id % 10)]).expect("insert"));
        }
        // Delete everything, then restore in reverse: table must be identical.
        let mut deleted = Vec::new();
        for &rid in &rids {
            deleted.push((rid, t.delete(rid).expect("present")));
        }
        prop_assert_eq!(t.row_count(), 0);
        for (rid, row) in deleted.into_iter().rev() {
            t.restore(rid, row);
        }
        prop_assert_eq!(t.row_count(), ids.len());
        for &id in &ids {
            prop_assert!(t.pk_lookup(&Value::Int(id)).is_some());
        }
        let ix = t.index_on(1).expect("index");
        let total: usize = (0..10i64).map(|g| ix.lookup_eq(&Value::Int(g)).len()).sum();
        prop_assert_eq!(total, ids.len());
    }
}
