//! Integration tests for the statement→plan cache: DDL staleness and
//! behaviour transparency (a cached engine must be indistinguishable from an
//! uncached one, result-for-result and error-for-error).

use amdb_sql::{BinlogFormat, Engine, Session, SqlError, Value};
use proptest::prelude::*;

fn master() -> (Engine, Session) {
    (Engine::new_master(BinlogFormat::Statement), Session::new())
}

fn seed_users(e: &mut Engine, s: &mut Session) {
    e.execute_batch(
        s,
        "CREATE TABLE users (id INT PRIMARY KEY, name TEXT NOT NULL, score DOUBLE);
         INSERT INTO users VALUES
           (1, 'alice', 10.0),
           (2, 'bob',   20.0),
           (3, 'alice', 30.0),
           (4, 'carol', 40.0)",
    )
    .expect("seed");
}

#[test]
fn create_index_after_cached_select_replans() {
    let (mut e, mut s) = master();
    seed_users(&mut e, &mut s);
    let q = "SELECT id FROM users WHERE name = 'alice' ORDER BY id";

    let scan = e.execute(&mut s, q, &[]).unwrap();
    // Re-run: the cached plan (full scan) is reused while still valid.
    let cached = e.execute(&mut s, q, &[]).unwrap();
    assert_eq!(scan, cached);
    assert!(e.plan_cache_stats().hits >= 1, "second run must hit");

    e.execute(&mut s, "CREATE INDEX idx_name ON users (name)", &[])
        .unwrap();
    let indexed = e.execute(&mut s, q, &[]).unwrap();
    // Same rows, but the stale full-scan plan must NOT be reused: the
    // replanned query goes through the index and examines fewer rows.
    assert_eq!(scan.rows, indexed.rows);
    assert!(
        indexed.rows_examined < scan.rows_examined,
        "index plan examines {} rows, full scan examined {}",
        indexed.rows_examined,
        scan.rows_examined
    );
}

#[test]
fn drop_table_after_cached_select_errors_cleanly() {
    let (mut e, mut s) = master();
    seed_users(&mut e, &mut s);
    let q = "SELECT id FROM users ORDER BY id";
    e.execute(&mut s, q, &[]).unwrap();
    e.execute(&mut s, "DROP TABLE users", &[]).unwrap();
    // The cached plan must not serve rows from a dropped table.
    let err = e.execute(&mut s, q, &[]).unwrap_err();
    assert!(matches!(err, SqlError::UnknownTable(_)), "got {err}");
}

#[test]
fn recreate_with_new_layout_after_cached_statements() {
    let (mut e, mut s) = master();
    e.execute_batch(
        &mut s,
        "CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT);
         INSERT INTO t VALUES (1, 10, 20)",
    )
    .unwrap();
    let sel = "SELECT a FROM t WHERE id = ?";
    let ins = "INSERT INTO t (id, a, b) VALUES (?, ?, ?)";
    assert_eq!(
        e.execute(&mut s, sel, &[Value::Int(1)]).unwrap().rows,
        vec![vec![Value::Int(10)]]
    );
    e.execute(
        &mut s,
        ins,
        &[Value::Int(2), Value::Int(11), Value::Int(21)],
    )
    .unwrap();

    // DROP + re-CREATE with b and a swapped: both cached plans are stale.
    e.execute_batch(
        &mut s,
        "DROP TABLE t;
         CREATE TABLE t (id INT PRIMARY KEY, b INT, a INT);
         INSERT INTO t VALUES (1, 20, 10)",
    )
    .unwrap();
    // The cached SELECT plan resolved column `a` at position 1 of the old
    // layout; reusing it would read the new table's `b`.
    assert_eq!(
        e.execute(&mut s, sel, &[Value::Int(1)]).unwrap().rows,
        vec![vec![Value::Int(10)]]
    );
    // The cached INSERT re-resolves its column list against the new layout.
    e.execute(
        &mut s,
        ins,
        &[Value::Int(3), Value::Int(12), Value::Int(22)],
    )
    .unwrap();
    assert_eq!(
        e.execute(&mut s, "SELECT a, b FROM t WHERE id = 3", &[])
            .unwrap()
            .rows,
        vec![vec![Value::Int(12), Value::Int(22)]]
    );
}

#[test]
fn slave_applying_statement_events_populates_cache() {
    let mut m = Engine::new_master(BinlogFormat::Statement);
    let mut slave = Engine::new_slave();
    let mut s = Session::new();
    m.execute_batch(&mut s, "CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)")
        .unwrap();
    for i in 0..20 {
        m.execute(
            &mut s,
            "INSERT INTO kv (k, v) VALUES (?, ?)",
            &[Value::Int(i), Value::Text(format!("v{i}"))],
        )
        .unwrap();
    }
    for ev in m.binlog_from(amdb_sql::Lsn(0)).to_vec() {
        slave.apply_event(&ev, 0).unwrap();
    }
    assert_eq!(slave.table_rows("kv"), Some(20));
    let stats = slave.plan_cache_stats();
    // 20 identical INSERT texts: first parse is a miss, the rest hit.
    assert!(
        stats.hits >= 19,
        "slave re-apply must hit the cache: {stats:?}"
    );
}

/// A pool of statement templates the transparency proptest draws from.
/// Mixes reads, writes, errors (unknown table), and DDL churn.
const TEMPLATES: &[&str] = &[
    "SELECT id, name, score FROM users WHERE id = ?",
    "SELECT name, COUNT(*), SUM(score) FROM users GROUP BY name ORDER BY name",
    "SELECT id FROM users WHERE score > ? ORDER BY id DESC LIMIT 2",
    "INSERT INTO users (id, name, score) VALUES (?, 'dave', ?)",
    "UPDATE users SET score = ? WHERE id = ?",
    "DELETE FROM users WHERE id = ?",
    "SELECT * FROM missing_table",
    "CREATE INDEX idx_score ON users (score)",
    "DROP TABLE users",
    "CREATE TABLE users (id INT PRIMARY KEY, name TEXT NOT NULL, score DOUBLE)",
];

fn arb_param() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-5i64..50).prop_map(Value::Int),
        (-5i64..50).prop_map(|i| Value::Double(i as f64)),
    ]
}

proptest! {
    /// parse→cache→execute ≡ parse→execute: the same statement sequence run
    /// on a cached and an uncached engine produces identical results and
    /// identical errors, statement by statement, including across DDL that
    /// invalidates cached plans.
    #[test]
    fn cached_and_uncached_engines_agree(
        ops in prop::collection::vec((0..TEMPLATES.len(), prop::collection::vec(arb_param(), 2)), 1..40)
    ) {
        let mut cached = Engine::new_master(BinlogFormat::Statement);
        let mut uncached = Engine::new_master(BinlogFormat::Statement);
        uncached.set_plan_cache_capacity(0);
        let mut cs = Session::new();
        let mut us = Session::new();
        for e in [&mut cached, &mut uncached] {
            let s = &mut Session::new();
            seed_users(e, s);
        }

        for (ti, params) in &ops {
            let sql = TEMPLATES[*ti];
            let need = sql.matches('?').count();
            let params = &params[..need.min(params.len())];
            let a = cached.execute(&mut cs, sql, params);
            let b = uncached.execute(&mut us, sql, params);
            match (a, b) {
                (Ok(ra), Ok(rb)) => prop_assert_eq!(ra, rb),
                (Err(ea), Err(eb)) => prop_assert_eq!(ea.to_string(), eb.to_string()),
                (a, b) => prop_assert!(false, "divergence on {}: {:?} vs {:?}", sql, a, b),
            }
        }
        prop_assert_eq!(cached.plan_cache_stats().entries > 0, true,
            "cache must actually be exercised");
        prop_assert_eq!(uncached.plan_cache_stats().entries, 0);
    }
}
