//! Property tests for the lexer/parser: no panics on arbitrary input, and
//! structurally generated statements always parse.

use amdb_sql::parser::parse;
use proptest::prelude::*;

proptest! {
    /// The parser is exposed to user input; it must reject garbage with an
    /// error, never a panic.
    #[test]
    fn arbitrary_text_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// Same for arbitrary byte-ish ASCII soup with SQL-looking fragments.
    #[test]
    fn sql_fragment_soup_never_panics(
        parts in prop::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("FROM".to_string()),
                Just("WHERE".to_string()),
                Just("INSERT INTO".to_string()),
                Just("VALUES".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just("'str'".to_string()),
                Just("?".to_string()),
                Just("42".to_string()),
                Just("*".to_string()),
                Just("=".to_string()),
                Just("users".to_string()),
                Just("JOIN".to_string()),
                Just("ON".to_string()),
                Just("GROUP BY".to_string()),
                Just("ORDER BY".to_string()),
                Just("LIMIT".to_string()),
            ],
            0..20,
        )
    ) {
        let _ = parse(&parts.join(" "));
    }

    /// Generated well-formed point SELECTs always parse.
    #[test]
    fn generated_selects_parse(
        table in "[a-z][a-z0-9_]{0,10}",
        col in "[a-z][a-z0-9_]{0,10}",
        v in any::<i64>(),
        limit in 1u64..1000,
    ) {
        let sql = format!("SELECT {col} FROM {table} WHERE {col} = {v} LIMIT {limit}");
        let stmt = parse(&sql).expect("well-formed select parses");
        prop_assert!(matches!(stmt, amdb_sql::ast::Statement::Select(_)));
    }

    /// Generated INSERTs with string literals (including quotes that need
    /// escaping) always parse and preserve the value.
    #[test]
    fn generated_inserts_parse(text in ".{0,40}") {
        let escaped = text.replace('\'', "''");
        let sql = format!("INSERT INTO t (a) VALUES ('{escaped}')");
        let stmt = parse(&sql).expect("well-formed insert parses");
        match stmt {
            amdb_sql::ast::Statement::Insert { rows, .. } => {
                match &rows[0][0] {
                    amdb_sql::ast::Expr::Literal(amdb_sql::Value::Text(s)) => {
                        prop_assert_eq!(s, &text);
                    }
                    other => prop_assert!(false, "unexpected expr {:?}", other),
                }
            }
            other => prop_assert!(false, "unexpected stmt {:?}", other),
        }
    }

    /// Numeric literals round-trip through the lexer.
    #[test]
    fn int_literals_round_trip(v in any::<i64>()) {
        let sql = format!("SELECT {v}");
        let stmt = parse(&sql).expect("parses");
        match stmt {
            amdb_sql::ast::Statement::Select(sel) => match &sel.items[0] {
                amdb_sql::ast::SelectItem::Expr { expr, .. } => {
                    // Negative literals parse as Neg(positive); evaluate both.
                    let ctx = amdb_sql::expr::EvalCtx::bare(0);
                    let got = amdb_sql::expr::eval(expr, &ctx, &amdb_sql::expr::NoColumns)
                        .expect("evaluates");
                    prop_assert_eq!(got, amdb_sql::Value::Int(v));
                }
                _ => prop_assert!(false),
            },
            _ => prop_assert!(false),
        }
    }
}
