//! Property tests for the LIKE matcher against a reference implementation.

use amdb_sql::expr::like_match;
use proptest::prelude::*;

/// Reference LIKE matcher via dynamic programming (distinct algorithm from
/// the recursive production matcher).
fn reference_like(s: &str, p: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = p.chars().collect();
    let (n, m) = (s.len(), p.len());
    let mut dp = vec![vec![false; m + 1]; n + 1];
    dp[0][0] = true;
    for j in 1..=m {
        dp[0][j] = p[j - 1] == '%' && dp[0][j - 1];
    }
    for i in 1..=n {
        for j in 1..=m {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i][j - 1] || dp[i - 1][j],
                '_' => dp[i - 1][j - 1],
                c => c == s[i - 1] && dp[i - 1][j - 1],
            };
        }
    }
    dp[n][m]
}

proptest! {
    #[test]
    fn matches_reference_on_ascii(
        s in "[abc_%]{0,12}",
        p in "[abc_%]{0,8}",
    ) {
        prop_assert_eq!(like_match(&s, &p), reference_like(&s, &p),
            "s={:?} p={:?}", s, p);
    }

    #[test]
    fn matches_reference_on_plain_text(
        s in "[a-z ]{0,15}",
        p in "[a-z%_]{0,10}",
    ) {
        prop_assert_eq!(like_match(&s, &p), reference_like(&s, &p),
            "s={:?} p={:?}", s, p);
    }

    #[test]
    fn percent_alone_matches_everything(s in ".{0,30}") {
        prop_assert!(like_match(&s, "%"));
    }

    #[test]
    fn exact_pattern_matches_itself(s in "[a-z0-9 ]{0,20}") {
        prop_assert!(like_match(&s, &s));
    }

    #[test]
    fn prefix_and_suffix_patterns(s in "[a-z]{1,10}", rest in "[a-z]{0,10}") {
        let full = format!("{s}{rest}");
        let prefix_pat = format!("{s}%");
        let suffix_pat = format!("%{rest}");
        prop_assert!(like_match(&full, &prefix_pat));
        prop_assert!(like_match(&full, &suffix_pat));
    }
}
