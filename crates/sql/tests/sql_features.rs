//! Integration tests for the extended SQL surface: DISTINCT, HAVING,
//! EXPLAIN, and the string/number scalar functions.

use amdb_sql::{BinlogFormat, Engine, Session, SqlError, Value};

fn engine() -> (Engine, Session) {
    let mut e = Engine::new_master(BinlogFormat::Statement);
    let mut s = Session::new();
    e.execute_batch(
        &mut s,
        "CREATE TABLE orders (id INT PRIMARY KEY, customer TEXT NOT NULL, total DOUBLE, city TEXT);
         CREATE INDEX idx_customer ON orders (customer);
         INSERT INTO orders VALUES
           (1, 'alice', 10.0, 'sydney'),
           (2, 'alice', 20.0, 'sydney'),
           (3, 'bob',   5.0,  'melbourne'),
           (4, 'bob',   7.5,  'sydney'),
           (5, 'carol', 100.0, 'melbourne'),
           (6, 'carol', 1.0,  'sydney'),
           (7, 'carol', 2.0,  'sydney')",
    )
    .expect("setup");
    (e, s)
}

#[test]
fn distinct_removes_duplicates() {
    let (mut e, mut s) = engine();
    let r = e
        .execute(
            &mut s,
            "SELECT DISTINCT city FROM orders ORDER BY city",
            &[],
        )
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::from("melbourne")], vec![Value::from("sydney")]]
    );
    // Without DISTINCT there are 7 rows.
    let all = e.execute(&mut s, "SELECT city FROM orders", &[]).unwrap();
    assert_eq!(all.rows.len(), 7);
}

#[test]
fn distinct_applies_to_whole_row() {
    let (mut e, mut s) = engine();
    let r = e
        .execute(
            &mut s,
            "SELECT DISTINCT customer, city FROM orders ORDER BY customer, city",
            &[],
        )
        .unwrap();
    // alice/sydney, bob/melbourne, bob/sydney, carol/melbourne, carol/sydney
    assert_eq!(r.rows.len(), 5);
}

#[test]
fn having_filters_groups() {
    let (mut e, mut s) = engine();
    let r = e
        .execute(
            &mut s,
            "SELECT customer, COUNT(*) AS n, SUM(total) AS spend FROM orders \
             GROUP BY customer HAVING COUNT(*) >= 2 AND SUM(total) > 20 \
             ORDER BY spend DESC",
            &[],
        )
        .unwrap();
    // alice: n=2 spend=30; carol: n=3 spend=103; bob: n=2 spend=12.5 (cut).
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Value::from("carol"));
    assert_eq!(r.rows[1][0], Value::from("alice"));
}

#[test]
fn having_without_group_by_is_rejected() {
    let (mut e, mut s) = engine();
    let err = e
        .execute(
            &mut s,
            "SELECT customer FROM orders HAVING COUNT(*) > 1",
            &[],
        )
        .unwrap_err();
    assert!(matches!(err, SqlError::Unsupported(_)));
}

#[test]
fn explain_reports_access_paths() {
    let (mut e, mut s) = engine();
    let r = e
        .execute(&mut s, "EXPLAIN SELECT * FROM orders WHERE id = 3", &[])
        .unwrap();
    assert_eq!(r.columns.as_ref(), ["table", "binding", "access"]);
    assert_eq!(r.rows[0][2], Value::from("pk eq"));

    let r = e
        .execute(
            &mut s,
            "EXPLAIN SELECT * FROM orders WHERE customer = 'bob'",
            &[],
        )
        .unwrap();
    assert!(r.rows[0][2].to_string().starts_with("index eq"));

    let r = e
        .execute(&mut s, "EXPLAIN SELECT * FROM orders WHERE total > 5", &[])
        .unwrap();
    assert_eq!(r.rows[0][2], Value::from("full scan"));
}

#[test]
fn explain_covers_joins() {
    let (mut e, mut s) = engine();
    e.execute_batch(
        &mut s,
        "CREATE TABLE customers2 (id INT PRIMARY KEY, name TEXT)",
    )
    .expect("join target table");
    let r = e
        .execute(
            &mut s,
            "EXPLAIN SELECT o.id FROM orders o INNER JOIN customers2 c ON c.id = o.id",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[1][2], Value::from("pk eq"), "join probes via pk");
}

#[test]
fn substring_trim_replace_round() {
    let (mut e, mut s) = engine();
    let one = |e: &mut Engine, s: &mut Session, sql: &str| -> Value {
        e.execute(s, sql, &[]).unwrap().rows[0][0].clone()
    };
    assert_eq!(
        one(&mut e, &mut s, "SELECT SUBSTRING('replication', 1, 7)"),
        Value::from("replica")
    );
    assert_eq!(
        one(&mut e, &mut s, "SELECT SUBSTRING('abcdef', -3)"),
        Value::from("def")
    );
    assert_eq!(
        one(&mut e, &mut s, "SELECT TRIM('  padded  ')"),
        Value::from("padded")
    );
    assert_eq!(
        one(&mut e, &mut s, "SELECT REPLACE('a-b-c', '-', '+')"),
        Value::from("a+b+c")
    );
    assert_eq!(
        one(&mut e, &mut s, "SELECT ROUND(2.567, 2)"),
        Value::Double(2.57)
    );
    assert_eq!(one(&mut e, &mut s, "SELECT ROUND(2.5)"), Value::Int(3));
    assert_eq!(
        one(&mut e, &mut s, "SELECT GREATEST(1, 9, 4)"),
        Value::Int(9)
    );
    assert_eq!(
        one(&mut e, &mut s, "SELECT LEAST(1.5, 0.5, 4.0)"),
        Value::Double(0.5)
    );
    assert_eq!(one(&mut e, &mut s, "SELECT GREATEST(1, NULL)"), Value::Null);
}

#[test]
fn new_functions_reject_bad_arity() {
    let (mut e, mut s) = engine();
    assert!(e.execute(&mut s, "SELECT SUBSTRING('x')", &[]).is_err());
    assert!(e.execute(&mut s, "SELECT REPLACE('x', 'y')", &[]).is_err());
    assert!(e.execute(&mut s, "SELECT ROUND()", &[]).is_err());
}

#[test]
fn distinct_with_aggregates_and_having_composes() {
    let (mut e, mut s) = engine();
    // Cities that host more than one distinct customer.
    let r = e
        .execute(
            &mut s,
            "SELECT city, COUNT(*) AS orders_n FROM orders \
             GROUP BY city HAVING COUNT(*) > 2 ORDER BY city",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::from("sydney"), Value::Int(5)]]);
}
