//! Property tests: binlog events survive encode → decode for arbitrary
//! contents, and corrupt prefixes never panic.

use amdb_sql::binlog::{BinlogEvent, EventPayload, Lsn};
use amdb_sql::exec::{RowChange, RowChangeKind};
use amdb_sql::Value;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite doubles only: NaN breaks PartialEq-based round-trip checks,
        // and the engine never stores NaN (comparisons reject it upstream).
        prop::num::f64::NORMAL.prop_map(Value::Double),
        ".{0,40}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Timestamp),
    ]
}

fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(arb_value(), 0..8)
}

fn arb_change() -> impl Strategy<Value = RowChange> {
    ("[a-z]{1,12}", arb_row(), arb_row(), 0..3u8).prop_map(|(table, a, b, kind)| RowChange {
        table,
        kind: match kind {
            0 => RowChangeKind::Insert { row: a },
            1 => RowChangeKind::Update {
                before: a,
                after: b,
            },
            _ => RowChangeKind::Delete { row: a },
        },
    })
}

fn arb_event() -> impl Strategy<Value = BinlogEvent> {
    (
        any::<u64>(),
        any::<i64>(),
        prop_oneof![
            (".{0,200}", arb_row())
                .prop_map(|(sql, params)| EventPayload::Statement { sql, params }),
            prop::collection::vec(arb_change(), 0..5)
                .prop_map(|changes| EventPayload::Rows { changes }),
        ],
    )
        .prop_map(|(lsn, ts, payload)| BinlogEvent {
            lsn: Lsn(lsn),
            commit_ts_micros: ts,
            payload,
        })
}

proptest! {
    #[test]
    fn encode_decode_round_trips(ev in arb_event()) {
        let decoded = BinlogEvent::decode(ev.encode()).expect("decodes");
        prop_assert_eq!(decoded, ev);
    }

    #[test]
    fn truncation_errors_cleanly(ev in arb_event(), cut in 0usize..64) {
        let full = ev.encode();
        if cut < full.len() {
            let sliced = full.slice(0..cut);
            // Must error, never panic. (A truncated prefix can never be a
            // valid event because lengths are encoded up front.)
            prop_assert!(BinlogEvent::decode(sliced).is_err());
        }
    }

    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Fuzz the decoder: any outcome is fine except a panic.
        let _ = BinlogEvent::decode(bytes::Bytes::from(bytes));
    }

    #[test]
    fn encoded_len_is_consistent(ev in arb_event()) {
        prop_assert_eq!(ev.encoded_len(), ev.encode().len());
    }
}
