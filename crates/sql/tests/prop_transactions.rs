//! Property test: transaction semantics against a shadow model.
//!
//! Arbitrary interleavings of BEGIN / writes / COMMIT / ROLLBACK must leave
//! the table exactly equal to a model that buffers uncommitted work, and
//! the binlog must contain exactly the committed writes (rolled-back work
//! never replicates — the invariant the cluster's convergence rests on).

use amdb_sql::{BinlogFormat, Engine, Lsn, Session, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Act {
    Begin,
    Commit,
    Rollback,
    Insert { id: i64, v: i64 },
    Update { id: i64, v: i64 },
    Delete { id: i64 },
}

fn arb_act() -> impl Strategy<Value = Act> {
    prop_oneof![
        1 => Just(Act::Begin),
        1 => Just(Act::Commit),
        1 => Just(Act::Rollback),
        3 => (0..30i64, any::<i64>()).prop_map(|(id, v)| Act::Insert { id, v }),
        2 => (0..30i64, any::<i64>()).prop_map(|(id, v)| Act::Update { id, v }),
        2 => (0..30i64).prop_map(|id| Act::Delete { id }),
    ]
}

/// Shadow model: committed state plus an open-transaction overlay.
#[derive(Default)]
struct Model {
    committed: BTreeMap<i64, i64>,
    txn: Option<BTreeMap<i64, i64>>,
}

impl Model {
    fn view(&self) -> &BTreeMap<i64, i64> {
        self.txn.as_ref().unwrap_or(&self.committed)
    }
    fn view_mut(&mut self) -> &mut BTreeMap<i64, i64> {
        self.txn.as_mut().unwrap_or(&mut self.committed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transactions_match_shadow_model(acts in prop::collection::vec(arb_act(), 0..80)) {
        let mut engine = Engine::new_master(BinlogFormat::Statement);
        let mut session = Session::new();
        engine
            .execute(&mut session, "CREATE TABLE t (id INT PRIMARY KEY, v BIGINT)", &[])
            .expect("schema");
        let mut model = Model::default();

        for act in acts {
            match act {
                Act::Begin => {
                    let res = engine.execute(&mut session, "BEGIN", &[]);
                    if model.txn.is_some() {
                        prop_assert!(res.is_err(), "nested BEGIN rejected");
                    } else {
                        prop_assert!(res.is_ok());
                        model.txn = Some(model.committed.clone());
                    }
                }
                Act::Commit => {
                    let res = engine.execute(&mut session, "COMMIT", &[]);
                    match model.txn.take() {
                        Some(overlay) => {
                            prop_assert!(res.is_ok());
                            model.committed = overlay;
                        }
                        None => prop_assert!(res.is_err(), "COMMIT without BEGIN rejected"),
                    }
                }
                Act::Rollback => {
                    let res = engine.execute(&mut session, "ROLLBACK", &[]);
                    match model.txn.take() {
                        Some(_) => prop_assert!(res.is_ok()),
                        None => prop_assert!(res.is_err(), "ROLLBACK without BEGIN rejected"),
                    }
                }
                Act::Insert { id, v } => {
                    let res = engine.execute(
                        &mut session,
                        "INSERT INTO t (id, v) VALUES (?, ?)",
                        &[Value::Int(id), Value::Int(v)],
                    );
                    if model.view().contains_key(&id) {
                        prop_assert!(res.is_err(), "duplicate pk rejected");
                    } else {
                        prop_assert!(res.is_ok());
                        model.view_mut().insert(id, v);
                    }
                }
                Act::Update { id, v } => {
                    let res = engine
                        .execute(
                            &mut session,
                            "UPDATE t SET v = ? WHERE id = ?",
                            &[Value::Int(v), Value::Int(id)],
                        )
                        .expect("update never errors");
                    let expected = u64::from(model.view().contains_key(&id));
                    prop_assert_eq!(res.rows_affected, expected);
                    if expected == 1 {
                        model.view_mut().insert(id, v);
                    }
                }
                Act::Delete { id } => {
                    let res = engine
                        .execute(&mut session, "DELETE FROM t WHERE id = ?", &[Value::Int(id)])
                        .expect("delete never errors");
                    let expected = u64::from(model.view().contains_key(&id));
                    prop_assert_eq!(res.rows_affected, expected);
                    model.view_mut().remove(&id);
                }
            }

            // Visible state always matches the model's view.
            let rows = engine
                .execute(&mut session, "SELECT id, v FROM t ORDER BY id", &[])
                .expect("select")
                .rows;
            let got: BTreeMap<i64, i64> = rows
                .iter()
                .map(|r| match (&r[0], &r[1]) {
                    (Value::Int(id), Value::Int(v)) => (*id, *v),
                    other => panic!("unexpected row {other:?}"),
                })
                .collect();
            prop_assert_eq!(&got, model.view());
        }

        // End of scenario: an open transaction rolls back implicitly in the
        // model; make the engine match by rolling back too.
        if model.txn.take().is_some() {
            engine.execute(&mut session, "ROLLBACK", &[]).expect("rollback");
        }

        // The binlog replays to exactly the committed state on a slave.
        let mut slave = Engine::new_slave();
        for ev in engine.binlog_from(Lsn(0)).to_vec() {
            slave.apply_event(&ev, 0).expect("apply");
        }
        let mut ss = Session::new();
        let rows = slave
            .execute(&mut ss, "SELECT id, v FROM t ORDER BY id", &[])
            .expect("select")
            .rows;
        let replayed: BTreeMap<i64, i64> = rows
            .iter()
            .map(|r| match (&r[0], &r[1]) {
                (Value::Int(id), Value::Int(v)) => (*id, *v),
                other => panic!("unexpected row {other:?}"),
            })
            .collect();
        prop_assert_eq!(
            &replayed, &model.committed,
            "binlog replay equals committed state (rolled-back work never ships)"
        );
    }
}
