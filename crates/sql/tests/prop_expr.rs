//! Property tests for expression evaluation: no panics for arbitrary
//! expression trees, and algebraic identities hold.

use amdb_sql::ast::{BinOp, Expr, UnOp};
use amdb_sql::expr::{eval, EvalCtx, NoColumns};
use amdb_sql::Value;
use proptest::prelude::*;

fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Literal(Value::Null)),
        (-1000i64..1000).prop_map(|i| Expr::Literal(Value::Int(i))),
        (-1000.0..1000.0f64).prop_map(|d| Expr::Literal(Value::Double(d))),
        "[a-z]{0,6}".prop_map(|s| Expr::Literal(Value::Text(s))),
        any::<bool>().prop_map(|b| Expr::Literal(Value::Bool(b))),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), any::<u8>()).prop_map(|(a, b, op)| {
                let op = match op % 11 {
                    0 => BinOp::And,
                    1 => BinOp::Or,
                    2 => BinOp::Eq,
                    3 => BinOp::NotEq,
                    4 => BinOp::Lt,
                    5 => BinOp::LtEq,
                    6 => BinOp::Gt,
                    7 => BinOp::GtEq,
                    8 => BinOp::Add,
                    9 => BinOp::Sub,
                    _ => BinOp::Mul,
                };
                Expr::Binary(Box::new(a), op, Box::new(b))
            }),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
            inner.clone().prop_map(|e| Expr::IsNull {
                expr: Box::new(e),
                negated: false
            }),
            (inner.clone(), prop::collection::vec(inner.clone(), 0..3)).prop_map(|(e, list)| {
                Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: false,
                }
            }),
        ]
    })
}

proptest! {
    /// Arbitrary well-formed trees evaluate to Ok or a clean error — never a
    /// panic. (Type mismatches are data-dependent and legitimate errors.)
    #[test]
    fn eval_never_panics(e in arb_expr()) {
        let ctx = EvalCtx::bare(123);
        let _ = eval(&e, &ctx, &NoColumns);
    }

    /// Double negation is identity on boolean-valued expressions.
    #[test]
    fn not_not_is_identity_on_bools(b in any::<bool>()) {
        let ctx = EvalCtx::bare(0);
        let e = Expr::Unary(
            UnOp::Not,
            Box::new(Expr::Unary(
                UnOp::Not,
                Box::new(Expr::Literal(Value::Bool(b))),
            )),
        );
        prop_assert_eq!(eval(&e, &ctx, &NoColumns).unwrap(), Value::Bool(b));
    }

    /// x = x is TRUE for any non-null comparable literal.
    #[test]
    fn reflexive_equality(i in any::<i64>()) {
        let ctx = EvalCtx::bare(0);
        let lit = Expr::Literal(Value::Int(i));
        let e = Expr::Binary(Box::new(lit.clone()), BinOp::Eq, Box::new(lit));
        prop_assert_eq!(eval(&e, &ctx, &NoColumns).unwrap(), Value::Bool(true));
    }

    /// Integer addition in-range matches Rust's.
    #[test]
    fn int_addition_matches(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let ctx = EvalCtx::bare(0);
        let e = Expr::Binary(
            Box::new(Expr::Literal(Value::Int(a))),
            BinOp::Add,
            Box::new(Expr::Literal(Value::Int(b))),
        );
        prop_assert_eq!(eval(&e, &ctx, &NoColumns).unwrap(), Value::Int(a + b));
    }

    /// AND is commutative in outcome for any pair of literals.
    #[test]
    fn and_commutes(a in arb_leaf(), b in arb_leaf()) {
        let ctx = EvalCtx::bare(0);
        let ab = Expr::Binary(Box::new(a.clone()), BinOp::And, Box::new(b.clone()));
        let ba = Expr::Binary(Box::new(b), BinOp::And, Box::new(a));
        // Both either error together or agree.
        match (eval(&ab, &ctx, &NoColumns), eval(&ba, &ctx, &NoColumns)) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), _) | (_, Err(_)) => {} // type-dependent errors allowed
        }
    }
}
