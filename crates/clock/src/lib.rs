//! # amdb-clock — per-VM clocks, drift, and NTP synchronization
//!
//! §IV-B.1 of the paper is entirely about clocks: the replication delay is
//! computed as the difference between a timestamp committed on the master and
//! a timestamp committed on a slave, so any skew between the two VMs' clocks
//! pollutes the measurement. The authors observed (Fig. 4) that
//!
//! * without periodic synchronization, the offset between two instances grows
//!   linearly (≈7 ms → ≈50 ms over 20 minutes) due to clock drift, because
//!   Amazon only disciplines instance clocks "every couple of hours";
//! * with NTP applied every second, the offset stays between ≈1 and ≈8 ms
//!   (median 3.30 ms, σ 1.19 ms).
//!
//! This crate models exactly those mechanics: a [`DriftingClock`] with a
//! per-instance frequency error (drift, in parts-per-million) and an
//! [`NtpClient`] that periodically snaps the offset to a residual error drawn
//! from a per-instance bias plus sync noise (the bias models the asymmetric
//! network path to the time servers, which is why two "synchronized" VMs
//! still disagree by a few milliseconds).

use amdb_sim::{Rng, SimDuration, SimTime};

/// A local wall-clock reading in microseconds since the Unix epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WallMicros(pub i64);

impl WallMicros {
    /// Signed difference `self - other` in microseconds.
    pub fn delta_micros(self, other: WallMicros) -> i64 {
        self.0 - other.0
    }

    /// Signed difference in milliseconds as a float.
    pub fn delta_millis_f64(self, other: WallMicros) -> f64 {
        self.delta_micros(other) as f64 / 1e3
    }
}

/// Wall-clock time corresponding to simulated time zero.
///
/// Chosen so heartbeat timestamps look like real epoch microseconds
/// (2012-02-01T00:00:00Z, the paper's submission era).
pub const WALL_EPOCH_MICROS: i64 = 1_328_054_400_000_000;

/// A VM's local clock: true time plus a piecewise-linear offset.
///
/// `offset(t) = offset_at_base + drift_ppm · (t - base)` until the next
/// correction resets the base. All quantities are in microseconds.
#[derive(Debug, Clone)]
pub struct DriftingClock {
    base: SimTime,
    offset_at_base_us: f64,
    drift_ppm: f64,
}

impl DriftingClock {
    /// A perfect clock: zero offset, zero drift.
    pub fn perfect() -> Self {
        Self::new(0.0, 0.0)
    }

    /// Clock with an initial offset (µs) and a frequency error (ppm; 1 ppm =
    /// 1 µs of error accumulated per true second).
    pub fn new(initial_offset_us: f64, drift_ppm: f64) -> Self {
        Self {
            base: SimTime::ZERO,
            offset_at_base_us: initial_offset_us,
            drift_ppm,
        }
    }

    /// The configured frequency error in ppm.
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }

    /// Current offset (local − true) in microseconds at true time `now`.
    pub fn offset_us(&self, now: SimTime) -> f64 {
        let dt_s = (now - self.base).as_secs_f64();
        self.offset_at_base_us + self.drift_ppm * dt_s
    }

    /// Read the local wall clock at true time `now`.
    pub fn read(&self, now: SimTime) -> WallMicros {
        WallMicros(WALL_EPOCH_MICROS + now.as_micros() as i64 + self.offset_us(now).round() as i64)
    }

    /// Step the clock so its offset at `now` becomes `offset_us` (what an NTP
    /// correction does). Drift is unaffected: frequency error persists.
    pub fn set_offset(&mut self, now: SimTime, offset_us: f64) {
        self.base = now;
        self.offset_at_base_us = offset_us;
    }
}

/// NTP client model: periodic corrections leave a residual offset equal to a
/// fixed per-instance bias plus zero-mean per-sync noise.
#[derive(Debug, Clone)]
pub struct NtpClient {
    bias_us: f64,
    noise_sigma_us: f64,
    syncs: u64,
}

/// Parameters for sampling NTP clients. Defaults are calibrated so that two
/// per-second-synced instances typically disagree by 1–8 ms (Fig. 4).
#[derive(Debug, Clone)]
pub struct NtpConfig {
    /// Std-dev of the per-instance path bias (µs). Default 2000 µs.
    pub bias_sigma_us: f64,
    /// Std-dev of per-sync noise (µs). Default 800 µs.
    pub noise_sigma_us: f64,
}

impl Default for NtpConfig {
    fn default() -> Self {
        Self {
            bias_sigma_us: 2_000.0,
            noise_sigma_us: 800.0,
        }
    }
}

impl NtpClient {
    /// Deterministic client with explicit bias/noise (µs).
    pub fn with_bias(bias_us: f64, noise_sigma_us: f64) -> Self {
        Self {
            bias_us,
            noise_sigma_us,
            syncs: 0,
        }
    }

    /// Sample a client for one instance: its path bias is drawn once and then
    /// fixed for the instance's lifetime.
    pub fn sample(cfg: &NtpConfig, rng: &mut Rng) -> Self {
        Self::with_bias(rng.normal(0.0, cfg.bias_sigma_us), cfg.noise_sigma_us)
    }

    /// The fixed per-instance bias in microseconds.
    pub fn bias_us(&self) -> f64 {
        self.bias_us
    }

    /// Number of corrections applied so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Apply one correction: the clock's offset becomes bias + noise.
    pub fn sync(&mut self, clock: &mut DriftingClock, now: SimTime, rng: &mut Rng) {
        let residual = self.bias_us + rng.normal(0.0, self.noise_sigma_us);
        clock.set_offset(now, residual);
        self.syncs += 1;
    }
}

/// Convenience: the true interval between the paper's per-second NTP syncs.
pub const NTP_SYNC_INTERVAL: SimDuration = SimDuration::from_secs(1);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_tracks_true_time() {
        let c = DriftingClock::perfect();
        let t = SimTime::from_secs(100);
        assert_eq!(
            c.read(t).0,
            WALL_EPOCH_MICROS + 100_000_000,
            "no offset, no drift"
        );
    }

    #[test]
    fn drift_accumulates_linearly() {
        // 36 ppm ~= the pair drift implied by Fig. 4 (43 ms over 20 min).
        let c = DriftingClock::new(7_000.0, 36.0);
        assert!((c.offset_us(SimTime::ZERO) - 7_000.0).abs() < 1e-9);
        let at_20min = c.offset_us(SimTime::from_secs(1200));
        assert!(
            (at_20min - (7_000.0 + 36.0 * 1200.0)).abs() < 1e-6,
            "got {at_20min}"
        );
        // ~50.2 ms — matches the paper's end-of-run observation.
        assert!((at_20min / 1000.0 - 50.2).abs() < 0.1);
    }

    #[test]
    fn two_clock_difference_matches_fig4_shape() {
        let a = DriftingClock::new(7_000.0, 20.0);
        let b = DriftingClock::new(0.0, -16.0);
        let t = SimTime::from_secs(1200);
        let diff_ms = a.read(t).delta_millis_f64(b.read(t));
        assert!((diff_ms - 50.2).abs() < 0.2, "got {diff_ms}");
    }

    #[test]
    fn set_offset_rebases() {
        let mut c = DriftingClock::new(10_000.0, 100.0);
        c.set_offset(SimTime::from_secs(10), 500.0);
        assert!((c.offset_us(SimTime::from_secs(10)) - 500.0).abs() < 1e-9);
        // Drift continues from the new base.
        assert!((c.offset_us(SimTime::from_secs(11)) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn ntp_sync_bounds_offset() {
        let mut rng = Rng::new(42);
        let mut clock = DriftingClock::new(25_000.0, 30.0);
        let mut ntp = NtpClient::with_bias(3_000.0, 800.0);
        let mut t = SimTime::ZERO;
        let mut worst: f64 = 0.0;
        for _ in 0..1200 {
            ntp.sync(&mut clock, t, &mut rng);
            t += NTP_SYNC_INTERVAL;
            worst = worst.max(clock.offset_us(t).abs());
        }
        assert_eq!(ntp.syncs(), 1200);
        // bias 3ms + noise 0.8ms σ + 30µs of drift per second: stays well
        // under the 8ms envelope the paper observed.
        assert!(worst < 8_000.0, "worst offset {worst}µs");
    }

    #[test]
    fn sampled_clients_have_distinct_biases() {
        let cfg = NtpConfig::default();
        let mut rng = Rng::new(7);
        let a = NtpClient::sample(&cfg, &mut rng);
        let b = NtpClient::sample(&cfg, &mut rng);
        assert_ne!(a.bias_us(), b.bias_us());
    }

    #[test]
    fn wall_micros_delta() {
        let a = WallMicros(1_000_500);
        let b = WallMicros(1_000_000);
        assert_eq!(a.delta_micros(b), 500);
        assert_eq!(b.delta_micros(a), -500);
        assert!((a.delta_millis_f64(b) - 0.5).abs() < 1e-12);
    }
}
