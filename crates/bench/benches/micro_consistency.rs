//! Micro-benchmarks over the amdb-consistency routing filter.
//!
//! The headline number: the `Eventual` policy's `decide_read` is a thin
//! passthrough to the balancer — its cost must be indistinguishable from
//! calling `Proxy::route` directly (the layer is opt-in precisely because
//! the default path pays ~nothing). The bounded/session policies pay for an
//! eligibility scan over the watermark table; those are benchmarked for
//! scale, not parity.

use amdb_consistency::{ConsistencyConfig, ConsistencyPolicy, SessionToken, WatermarkTable};
use amdb_proxy::{OpClass, Proxy, RoundRobin};
use criterion::{criterion_group, criterion_main, Criterion};

const SLAVES: usize = 4;

fn proxy() -> Proxy {
    Proxy::new(SLAVES, Box::new(RoundRobin::default()))
}

fn watermarks() -> WatermarkTable {
    let mut wm = WatermarkTable::new(SLAVES, 0);
    wm.note_master_seq(1_000, 0.0);
    for s in 0..SLAVES {
        // Half the slaves caught up, half lagging.
        let seq = if s % 2 == 0 { 1_000 } else { 900 };
        wm.note_applied(s, seq, 1.0, s % 2 != 0);
    }
    wm
}

fn bench(c: &mut Criterion) {
    c.bench_function("consistency/baseline_proxy_route", |b| {
        let mut proxy = proxy();
        b.iter(|| proxy.route(OpClass::Read))
    });

    c.bench_function("consistency/eventual_decide_read", |b| {
        let mut proxy = proxy();
        let wm = watermarks();
        let cfg = ConsistencyConfig::new(ConsistencyPolicy::Eventual);
        let session = SessionToken::new();
        b.iter(|| cfg.decide_read(&mut proxy, &wm, &session, 5.0, 0.0))
    });

    c.bench_function("consistency/bounded_decide_read", |b| {
        let mut proxy = proxy();
        let wm = watermarks();
        let cfg = ConsistencyConfig::new(ConsistencyPolicy::BoundedStaleness { max_ms: 50.0 });
        let session = SessionToken::new();
        b.iter(|| cfg.decide_read(&mut proxy, &wm, &session, 5.0, 0.0))
    });

    c.bench_function("consistency/ryw_decide_read", |b| {
        let mut proxy = proxy();
        let wm = watermarks();
        let cfg = ConsistencyConfig::new(ConsistencyPolicy::ReadYourWrites);
        let mut session = SessionToken::new();
        session.observe_write(950);
        b.iter(|| cfg.decide_read(&mut proxy, &wm, &session, 5.0, 0.0))
    });

    c.bench_function("consistency/watermark_note_applied", |b| {
        let mut wm = watermarks();
        let mut now = 1.0;
        let mut seq = 1_000u64;
        b.iter(|| {
            now += 0.5;
            seq += 1;
            wm.note_master_seq(seq, now);
            wm.note_applied(1, seq - 50, now, true);
            wm.est_staleness_ms(1, now)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
