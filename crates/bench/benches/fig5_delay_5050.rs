//! Fig. 5 — average relative replication delay, 50/50 mix.

use amdb_bench::figure_banner;
use amdb_core::Placement;
use amdb_experiments::{sweep, Fidelity};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    figure_banner("Fig 5 (relative replication delay, 50/50)");
    let spec = sweep::SweepSpec::fig2_fig5(Fidelity::Quick);
    for r in sweep::run_sweep(&spec, &sweep::SweepOptions::serial()) {
        println!("{}", r.delay.render());
    }

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("cell_1slave_175users", |b| {
        b.iter(|| sweep::run_cell(&spec, Placement::SameZone, 1, 175))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
