//! Fig. 2 — end-to-end throughput, 50/50 mix, data size 300.
//!
//! Prints the regenerated quick-fidelity series, then times the saturation
//! cell (2 slaves, 175 users, same zone).

use amdb_bench::figure_banner;
use amdb_core::Placement;
use amdb_experiments::{sweep, Fidelity};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    figure_banner("Fig 2 (throughput, 50/50)");
    let spec = sweep::SweepSpec::fig2_fig5(Fidelity::Quick);
    for r in sweep::run_sweep(&spec, &sweep::SweepOptions::serial()) {
        println!("{}", r.throughput.render());
    }

    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("cell_2slaves_175users", |b| {
        b.iter(|| sweep::run_cell(&spec, Placement::SameZone, 2, 175))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
