//! Fig. 3 — end-to-end throughput, 80/20 mix, data size 600.

use amdb_bench::figure_banner;
use amdb_core::Placement;
use amdb_experiments::{sweep, Fidelity};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    figure_banner("Fig 3 (throughput, 80/20)");
    let spec = sweep::SweepSpec::fig3_fig6(Fidelity::Quick);
    for r in sweep::run_sweep(&spec, &sweep::SweepOptions::serial()) {
        println!("{}", r.throughput.render());
    }

    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("cell_5slaves_250users", |b| {
        b.iter(|| sweep::run_cell(&spec, Placement::SameZone, 5, 250))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
