//! A1 — async vs semi-sync vs sync commit disciplines.

use amdb_bench::figure_banner;
use amdb_experiments::{ablations, Fidelity};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    figure_banner("A1 (sync modes)");
    println!(
        "{}",
        ablations::sync_modes_table(&ablations::sync_modes(Fidelity::Quick, 1)).render()
    );

    let mut g = c.benchmark_group("ablation_sync_modes");
    g.sample_size(10);
    g.bench_function("three_modes_quick", |b| {
        b.iter(|| ablations::sync_modes(Fidelity::Quick, 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
