//! A2 — balancing policies over heterogeneous slaves.

use amdb_bench::figure_banner;
use amdb_experiments::{ablations, Fidelity};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    figure_banner("A2 (balancer policies)");
    println!(
        "{}",
        ablations::balancers_table(&ablations::balancers(Fidelity::Quick, 1)).render()
    );

    let mut g = c.benchmark_group("ablation_balancers");
    g.sample_size(10);
    g.bench_function("four_policies_quick", |b| {
        b.iter(|| ablations::balancers(Fidelity::Quick, 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
