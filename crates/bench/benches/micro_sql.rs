//! Micro-benchmarks over the SQL engine: parse, point reads, index reads,
//! joins, inserts, and replica apply.

use amdb_cloudstone::{build_template, DataSize};
use amdb_sim::Rng;
use amdb_sql::{BinlogFormat, Engine, ForkRole, Lsn, Session, Value};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn loaded_engine() -> Engine {
    let mut rng = Rng::new(1);
    let (template, _) = build_template(DataSize { scale: 50 }, &mut rng);
    template.fork(ForkRole::Master(BinlogFormat::Statement))
}

fn bench(c: &mut Criterion) {
    let mut engine = loaded_engine();
    let mut session = Session::new();

    c.bench_function("sql/parse_select_join", |b| {
        b.iter(|| {
            amdb_sql::parser::parse(
                "SELECT e.id, e.title, u.username FROM event_tags et \
                 INNER JOIN events e ON et.event_id = e.id \
                 INNER JOIN users u ON e.created_by = u.id \
                 WHERE et.tag_id = 7 LIMIT 20",
            )
            .unwrap()
        })
    });

    c.bench_function("sql/pk_point_select", |b| {
        b.iter(|| {
            engine
                .execute(
                    &mut session,
                    "SELECT id, title FROM events WHERE id = ?",
                    &[Value::Int(123)],
                )
                .unwrap()
        })
    });

    c.bench_function("sql/index_range_order_limit", |b| {
        b.iter(|| {
            engine
                .execute(
                    &mut session,
                    "SELECT id, title FROM events WHERE zip = 7 ORDER BY event_ts DESC LIMIT 10",
                    &[],
                )
                .unwrap()
        })
    });

    c.bench_function("sql/two_way_indexed_join", |b| {
        b.iter(|| {
            engine
                .execute(
                    &mut session,
                    "SELECT e.title, u.username FROM event_tags et \
                     INNER JOIN events e ON et.event_id = e.id \
                     INNER JOIN users u ON e.created_by = u.id \
                     WHERE et.tag_id = 9 LIMIT 20",
                    &[],
                )
                .unwrap()
        })
    });

    c.bench_function("sql/aggregate_group_by", |b| {
        b.iter(|| {
            engine
                .execute(
                    &mut session,
                    "SELECT tag_id, COUNT(*) FROM event_tags GROUP BY tag_id",
                    &[],
                )
                .unwrap()
        })
    });

    let mut next_id = 10_000_000i64;
    c.bench_function("sql/insert_single_row", |b| {
        b.iter(|| {
            next_id += 1;
            engine
                .execute(
                    &mut session,
                    "INSERT INTO comments (id, event_id, user_id, rating, body, created_at) \
                     VALUES (?, 1, 1, 5, 'bench', 0)",
                    &[Value::Int(next_id)],
                )
                .unwrap()
        })
    });

    c.bench_function("sql/statement_apply_on_replica", |b| {
        let mut master = loaded_engine();
        let mut ms = Session::new();
        master
            .execute(
                &mut ms,
                "INSERT INTO comments (id, event_id, user_id, rating, body, created_at) \
                 VALUES (99999999, 1, 1, 5, 'x', NOW_MICROS())",
                &[],
            )
            .unwrap();
        let ev = master.binlog_from(Lsn(0))[0].clone();
        b.iter_batched(
            || loaded_engine().fork(ForkRole::Slave),
            |mut slave| slave.apply_event(&ev, 42).unwrap(),
            BatchSize::SmallInput,
        )
    });

    // Plan-cache hot path: the same statement prepared again and again. The
    // cached leg amortizes parse+plan to a map probe; the uncached engine
    // (capacity 0) re-parses and re-plans every time.
    const PREPARE_SQL: &str = "SELECT e.id, e.title, u.username FROM event_tags et \
         INNER JOIN events e ON et.event_id = e.id \
         INNER JOIN users u ON e.created_by = u.id \
         WHERE et.tag_id = ? LIMIT 20";

    c.bench_function("sql/prepare_cached", |b| {
        let mut e = loaded_engine();
        b.iter(|| e.prepare(PREPARE_SQL).unwrap())
    });

    c.bench_function("sql/prepare_uncached", |b| {
        let mut e = loaded_engine();
        e.set_plan_cache_capacity(0);
        b.iter(|| e.prepare(PREPARE_SQL).unwrap())
    });

    // The harness above only prints its measurements; the cache's speed
    // contract is asserted here explicitly: a cache hit must beat a fresh
    // parse+plan by at least 5x.
    {
        use std::hint::black_box;
        const ITERS: u32 = 20_000;
        let mut cached = loaded_engine();
        let mut uncached = loaded_engine();
        uncached.set_plan_cache_capacity(0);
        cached.prepare(PREPARE_SQL).unwrap(); // warm the single entry
        let start = std::time::Instant::now();
        for _ in 0..ITERS {
            black_box(cached.prepare(black_box(PREPARE_SQL)).unwrap());
        }
        let hit = start.elapsed();
        let start = std::time::Instant::now();
        for _ in 0..ITERS {
            black_box(uncached.prepare(black_box(PREPARE_SQL)).unwrap());
        }
        let miss = start.elapsed();
        let ratio = miss.as_secs_f64() / hit.as_secs_f64().max(1e-12);
        assert!(
            ratio >= 5.0,
            "cached prepare must be >= 5x faster than uncached, measured {ratio:.1}x \
             (hit {:?}, miss {:?})",
            hit / ITERS,
            miss / ITERS,
        );
        println!("sql/prepare cache hit vs parse+plan            {ratio:.1}x (>= 5x contract)");
    }

    c.bench_function("sql/binlog_encode_decode", |b| {
        let mut master = loaded_engine();
        let mut ms = Session::new();
        master
            .execute(
                &mut ms,
                "INSERT INTO comments (id, event_id, user_id, rating, body, created_at) \
                 VALUES (88888888, 1, 1, 5, 'roundtrip', 0)",
                &[],
            )
            .unwrap();
        let ev = master.binlog_from(Lsn(0))[0].clone();
        b.iter(|| {
            let bytes = ev.encode();
            amdb_sql::BinlogEvent::decode(bytes).unwrap()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
