//! Micro-benchmarks over the amdb-apply dependency scheduler.
//!
//! The headline number: planning one batch is a per-event writeset scan
//! over a bounded window, so its dispatch cost must stay within a small
//! constant factor of the serial pop-one path (`workers = 1`), which does
//! no conflict analysis at all. The other benches scale the two extremes —
//! an all-disjoint stream (largest batches, most scanning per batch) and
//! an all-conflicting stream (every batch closes after one event).

use amdb_apply::simulate;
use amdb_sql::exec::{RowChange, RowChangeKind};
use amdb_sql::{BinlogEvent, EventPayload, Lsn, Value};
use criterion::{criterion_group, criterion_main, Criterion};

const STREAM: usize = 1_024;

/// A row event writing one row of table `t` with primary key `pk`.
fn row_event(lsn: u64, pk: i64) -> BinlogEvent {
    BinlogEvent {
        lsn: Lsn(lsn),
        commit_ts_micros: lsn as i64,
        payload: EventPayload::Rows {
            changes: vec![RowChange {
                table: "t".into(),
                kind: RowChangeKind::Insert {
                    row: vec![Value::Int(pk), Value::Int(lsn as i64)],
                },
            }],
        },
    }
}

/// `STREAM` events with all-distinct keys: every batch fills to the worker
/// cap and the planner scans the most candidates per batch.
fn disjoint_stream() -> Vec<BinlogEvent> {
    (0..STREAM as u64).map(|i| row_event(i, i as i64)).collect()
}

/// `STREAM` events all touching the same key: every batch closes at length
/// one — the planner's worst useful-work-to-dispatch ratio.
fn conflicting_stream() -> Vec<BinlogEvent> {
    (0..STREAM as u64).map(|i| row_event(i, 7)).collect()
}

fn bench(c: &mut Criterion) {
    let disjoint = disjoint_stream();
    let conflicting = conflicting_stream();
    let pk = |_: &str| Some(0usize);

    // The serial baseline: workers = 1 short-circuits to singleton batches
    // without computing writesets.
    c.bench_function("apply/dispatch_serial_1k", |b| {
        b.iter(|| simulate(&disjoint, 1, pk))
    });

    c.bench_function("apply/dispatch_disjoint_8w_1k", |b| {
        b.iter(|| simulate(&disjoint, 8, pk))
    });

    c.bench_function("apply/dispatch_conflicting_8w_1k", |b| {
        b.iter(|| simulate(&conflicting, 8, pk))
    });

    // Keyless tables degrade every event to a barrier — the DDL-heavy
    // worst case.
    c.bench_function("apply/dispatch_barrier_8w_1k", |b| {
        b.iter(|| simulate(&disjoint, 8, |_: &str| None))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
