//! §IV-A instance performance variation.

use amdb_bench::figure_banner;
use amdb_experiments::{perfvar, Fidelity};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    figure_banner("instance performance variation (§IV-A)");
    println!("{}", perfvar::table(Fidelity::Quick, 1).render());

    let mut g = c.benchmark_group("perfvar");
    g.bench_function("fleet_speed_cov_2000", |b| {
        b.iter(|| perfvar::fleet_speed_cov(2000, 5))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
