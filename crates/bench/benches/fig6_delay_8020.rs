//! Fig. 6 — average relative replication delay, 80/20 mix.

use amdb_bench::figure_banner;
use amdb_core::Placement;
use amdb_experiments::{sweep, Fidelity};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    figure_banner("Fig 6 (relative replication delay, 80/20)");
    let spec = sweep::SweepSpec::fig3_fig6(Fidelity::Quick);
    for r in sweep::run_sweep(&spec, &sweep::SweepOptions::serial()) {
        println!("{}", r.delay.render());
    }

    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("cell_11slaves_450users", |b| {
        b.iter(|| sweep::run_cell(&spec, Placement::SameZone, 11, 450))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
