//! Fig. 4 — clock difference between two instances, NTP on/off.

use amdb_bench::figure_banner;
use amdb_experiments::fig4;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    figure_banner("Fig 4 (clock sync)");
    let r = fig4::run(&fig4::Fig4Spec::default());
    println!("{}", fig4::summary_table(&r).render());

    let mut g = c.benchmark_group("fig4");
    g.bench_function("both_arms_20min", |b| {
        b.iter(|| fig4::run(&fig4::Fig4Spec::default()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
