//! Micro-benchmarks over the substrates: DES kernel, CPU model, connection
//! pool, metrics, RNG.

use amdb_metrics::{trimmed_mean, QuantileSketch};
use amdb_obs::{Component, FlowPhase, Obs, ObsConfig};
use amdb_pool::{Pool, PoolConfig, SimPool};
use amdb_sim::{FifoCpu, Rng, Sim, SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("kernel/100k_chained_events", |b| {
        b.iter(|| {
            struct W {
                n: u64,
            }
            let mut sim: Sim<W> = Sim::new();
            let mut w = W { n: 0 };
            fn tick(w: &mut W, sim: &mut Sim<W>) {
                w.n += 1;
                if w.n < 100_000 {
                    sim.schedule_in(SimDuration::from_micros(10), tick);
                }
            }
            sim.schedule_at(SimTime::ZERO, tick);
            sim.run(&mut w);
            w.n
        })
    });

    c.bench_function("kernel/fifo_cpu_submit", |b| {
        let mut cpu = FifoCpu::new(1.0);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(7);
            cpu.submit(t, SimDuration::from_micros(5))
        })
    });

    c.bench_function("pool/sim_acquire_release", |b| {
        let mut pool = SimPool::new(PoolConfig { max_active: 64 });
        b.iter(|| {
            let a = pool.acquire(SimTime::ZERO);
            pool.release(SimTime::ZERO);
            a
        })
    });

    c.bench_function("pool/threadsafe_get_drop", |b| {
        let pool = Pool::new(8, || 0u64);
        b.iter(|| {
            let g = pool.get();
            *g
        })
    });

    c.bench_function("metrics/trimmed_mean_10k", |b| {
        let mut rng = Rng::new(3);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.f64()).collect();
        b.iter(|| trimmed_mean(&xs, 0.05).unwrap())
    });

    c.bench_function("rng/lognormal_mean_cov", |b| {
        let mut rng = Rng::new(5);
        b.iter(|| rng.lognormal_mean_cov(1.0, 0.21))
    });

    // Recorder hot path. The disabled probe must be a single discriminant
    // branch (no allocation, no formatting); the enabled one is an enum
    // dispatch plus a Vec push / BTreeMap update.
    c.bench_function("obs/probe_disabled_null", |b| {
        let mut obs = Obs::default();
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(3);
            obs.counter(Component::Cpu, 0, "queue_depth", t, 4.0);
            obs.is_enabled()
        })
    });

    c.bench_function("obs/span_enabled_trace", |b| {
        let mut obs = Obs::from_config(&ObsConfig::enabled());
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(3);
            obs.span(
                Component::Cpu,
                0,
                "serve_read",
                t,
                t + SimDuration::from_micros(5),
            );
            obs.is_enabled()
        })
    });

    c.bench_function("obs/incr_enabled_trace", |b| {
        let mut obs = Obs::from_config(&ObsConfig::enabled());
        b.iter(|| {
            obs.incr(Component::Proxy, 1, "routed_reads", 1);
            obs.is_enabled()
        })
    });

    // Telemetry hot paths. Recording into the bounded quantile sketch is a
    // log, a floor, and a bucket increment; the disabled probe (flow +
    // sketch observe on Obs::Null) must be a discriminant branch and
    // nothing else.
    c.bench_function("telemetry/sketch_record", |b| {
        let mut sk = QuantileSketch::latency();
        let mut rng = Rng::new(9);
        b.iter(|| {
            sk.record(rng.f64() * 250.0);
            sk.count()
        })
    });

    c.bench_function("telemetry/probe_disabled_null", |b| {
        let mut obs = Obs::default();
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(3);
            obs.flow(FlowPhase::Step, Component::Repl, 0, "writeset", t, 42);
            obs.observe_sketch(Component::Proxy, 0, "client_latency_ms", 1.0);
            obs.is_enabled()
        })
    });

    // The time-series plane shares the contract: a disabled tsdb probe is
    // the same single discriminant test.
    c.bench_function("obs/tsdb_observe_disabled_null", |b| {
        let mut obs = Obs::default();
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(3);
            obs.tsdb_observe(Component::Repl, 0, "apply_batch_len", t, 4.0);
            obs.is_enabled()
        })
    });

    // The harness above only prints its measurements, so the zero-cost
    // contract is asserted here explicitly: a disabled flow probe must
    // average under a nanosecond.
    {
        use std::hint::black_box;
        let mut obs = black_box(Obs::default());
        const ITERS: u64 = 50_000_000;
        // Baseline loop with identical black_box traffic, so the asserted
        // delta is the probe's own cost, not loop scaffolding.
        let start = std::time::Instant::now();
        for i in 0..ITERS {
            black_box(i);
        }
        let base = start.elapsed();
        let start = std::time::Instant::now();
        for i in 0..ITERS {
            obs.flow(
                FlowPhase::Step,
                Component::Repl,
                0,
                "writeset",
                SimTime::from_micros(black_box(i)),
                i,
            );
        }
        let with_probe = start.elapsed();
        black_box(&obs);
        let per = with_probe.saturating_sub(base).as_nanos() as f64 / ITERS as f64;
        assert!(
            per < 1.0,
            "disabled telemetry probe must be sub-nanosecond, measured {per:.3} ns"
        );
        println!(
            "telemetry/probe_disabled_null explicit loop    {per:.4} ns/probe (< 1 ns contract)"
        );
    }

    // Same explicit sub-nanosecond assertion for the disabled tsdb probe.
    {
        use std::hint::black_box;
        let mut obs = black_box(Obs::default());
        const ITERS: u64 = 50_000_000;
        let start = std::time::Instant::now();
        for i in 0..ITERS {
            black_box(i);
        }
        let base = start.elapsed();
        let start = std::time::Instant::now();
        for i in 0..ITERS {
            obs.tsdb_observe(
                Component::Repl,
                0,
                "apply_batch_len",
                SimTime::from_micros(black_box(i)),
                4.0,
            );
        }
        let with_probe = start.elapsed();
        black_box(&obs);
        let per = with_probe.saturating_sub(base).as_nanos() as f64 / ITERS as f64;
        assert!(
            per < 1.0,
            "disabled tsdb probe must be sub-nanosecond, measured {per:.3} ns"
        );
        println!(
            "obs/tsdb_observe_disabled_null explicit loop   {per:.4} ns/probe (< 1 ns contract)"
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
