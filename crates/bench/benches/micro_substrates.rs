//! Micro-benchmarks over the substrates: DES kernel, CPU model, connection
//! pool, metrics, RNG.

use amdb_metrics::trimmed_mean;
use amdb_obs::{Component, Obs, ObsConfig};
use amdb_pool::{Pool, PoolConfig, SimPool};
use amdb_sim::{FifoCpu, Rng, Sim, SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("kernel/100k_chained_events", |b| {
        b.iter(|| {
            struct W {
                n: u64,
            }
            let mut sim: Sim<W> = Sim::new();
            let mut w = W { n: 0 };
            fn tick(w: &mut W, sim: &mut Sim<W>) {
                w.n += 1;
                if w.n < 100_000 {
                    sim.schedule_in(SimDuration::from_micros(10), tick);
                }
            }
            sim.schedule_at(SimTime::ZERO, tick);
            sim.run(&mut w);
            w.n
        })
    });

    c.bench_function("kernel/fifo_cpu_submit", |b| {
        let mut cpu = FifoCpu::new(1.0);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(7);
            cpu.submit(t, SimDuration::from_micros(5))
        })
    });

    c.bench_function("pool/sim_acquire_release", |b| {
        let mut pool = SimPool::new(PoolConfig { max_active: 64 });
        b.iter(|| {
            let a = pool.acquire(SimTime::ZERO);
            pool.release(SimTime::ZERO);
            a
        })
    });

    c.bench_function("pool/threadsafe_get_drop", |b| {
        let pool = Pool::new(8, || 0u64);
        b.iter(|| {
            let g = pool.get();
            *g
        })
    });

    c.bench_function("metrics/trimmed_mean_10k", |b| {
        let mut rng = Rng::new(3);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.f64()).collect();
        b.iter(|| trimmed_mean(&xs, 0.05).unwrap())
    });

    c.bench_function("rng/lognormal_mean_cov", |b| {
        let mut rng = Rng::new(5);
        b.iter(|| rng.lognormal_mean_cov(1.0, 0.21))
    });

    // Recorder hot path. The disabled probe must be a single discriminant
    // branch (no allocation, no formatting); the enabled one is an enum
    // dispatch plus a Vec push / BTreeMap update.
    c.bench_function("obs/probe_disabled_null", |b| {
        let mut obs = Obs::default();
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(3);
            obs.counter(Component::Cpu, 0, "queue_depth", t, 4.0);
            obs.is_enabled()
        })
    });

    c.bench_function("obs/span_enabled_trace", |b| {
        let mut obs = Obs::from_config(&ObsConfig::enabled());
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(3);
            obs.span(
                Component::Cpu,
                0,
                "serve_read",
                t,
                t + SimDuration::from_micros(5),
            );
            obs.is_enabled()
        })
    });

    c.bench_function("obs/incr_enabled_trace", |b| {
        let mut obs = Obs::from_config(&ObsConfig::enabled());
        b.iter(|| {
            obs.incr(Component::Proxy, 1, "routed_reads", 1);
            obs.is_enabled()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
