//! §IV-B.2 in-text ½-RTT table.

use amdb_bench::figure_banner;
use amdb_experiments::rtt;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    figure_banner("½-RTT table (§IV-B.2)");
    println!("{}", rtt::table(&rtt::run(1200, 7)).render());

    let mut g = c.benchmark_group("rtt");
    g.bench_function("ping_20min_3placements", |b| b.iter(|| rtt::run(1200, 7)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
