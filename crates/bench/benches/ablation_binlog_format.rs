//! A3 — statement- vs row-based binlog under a write-heavy mix.

use amdb_bench::figure_banner;
use amdb_experiments::{ablations, Fidelity};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    figure_banner("A3 (binlog formats)");
    println!(
        "{}",
        ablations::binlog_formats_table(&ablations::binlog_formats(Fidelity::Quick, 1)).render()
    );

    let mut g = c.benchmark_group("ablation_binlog_format");
    g.sample_size(10);
    g.bench_function("two_formats_quick", |b| {
        b.iter(|| ablations::binlog_formats(Fidelity::Quick, 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
