//! # amdb-bench — benchmark harnesses
//!
//! One Criterion bench per paper table/figure (`benches/fig*.rs`,
//! `benches/rtt_table.rs`, `benches/perfvar.rs`), three ablation benches,
//! and two micro-benchmark suites over the substrates.
//!
//! Every figure bench first *regenerates the figure's rows* at quick
//! fidelity (printed to stdout, so `cargo bench` output contains the same
//! series the paper plots), then times a representative grid cell. The
//! paper-fidelity grids are produced by the `amdb-experiments` binaries
//! (`cargo run --release -p amdb-experiments --bin fig2 -- --full`).

/// Shared helper: print a header line for a regenerated figure.
pub fn figure_banner(name: &str) {
    println!("\n===== regenerating {name} (quick fidelity) =====");
}
