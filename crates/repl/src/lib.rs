//! # amdb-repl — master-slave replication middleware
//!
//! The paper's database tier is MySQL master-slave replication: "read
//! transactions are served by slaves while all the write transactions are
//! only served by the master. The replication middleware is in charge of
//! passing writesets from the master to slaves in order to keep the database
//! replicas up-to-date" (§II).
//!
//! This crate provides:
//!
//! * [`ReplMode`] — asynchronous (the paper's configuration), semi-
//!   synchronous and synchronous commit disciplines (§II discusses the
//!   trade-off; ablation A1 measures it);
//! * [`RelayQueue`] — the slave-side relay log fed by the I/O thread and
//!   drained in order by the single SQL apply thread;
//! * [`heartbeat`] — the paper's replication-delay instrumentation: a
//!   heartbeat table written on the master once per second with a global id
//!   and a microsecond local timestamp; statement-based replication
//!   re-executes the insert on each slave with the slave's own clock, and
//!   the delay is the difference of the two timestamps (§III-A);
//! * [`backend`] — the [`ReplicationBackend`] seam: binlog fan-out
//!   (statement or row) vs. the Taurus-style shared log, behind one trait so
//!   the experiments can compare the designs;
//! * [`logstore`] — the quorum-replicated shared log service with
//!   per-replica fault timelines and retry/timeout/backoff;
//! * [`ReplicatedDb`] — an untimed master+slaves bundle for direct library
//!   use (ship/apply immediately); the *timed* cluster lives in `amdb-core`.

pub mod backend;
pub mod heartbeat;
pub mod logstore;
pub mod relay;

pub use backend::{backend_for, BackendKind, BinlogFanout, ReplicationBackend, SharedLogBackend};
pub use heartbeat::{
    collect_samples, HeartbeatPlugin, HeartbeatSample, HEARTBEAT_SCHEMA, HEARTBEAT_TABLE,
};
pub use logstore::{
    ack_time_us, AckResult, FaultTimeline, LogStore, LogStoreConfig, ReplicaAck, RetryPolicy,
};
pub use relay::RelayQueue;

use amdb_sql::{BinlogFormat, Engine, QueryResult, Session, SqlError, Value};

/// Commit discipline for replicated writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplMode {
    /// Return to the client as soon as the master commits; writesets
    /// propagate later (the paper's setup — "avoids high write latency over
    /// networks in exchange of stale data", §II).
    Async,
    /// Return once at least one slave has *received* the writeset.
    SemiSync,
    /// Return once every slave has *applied* the writeset ("makes sure that
    /// all replicas are consistent ... however traversing all replicas
    /// potentially incurs high latency on write transactions", §II).
    Sync,
}

impl ReplMode {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ReplMode::Async => "async",
            ReplMode::SemiSync => "semi-sync",
            ReplMode::Sync => "sync",
        }
    }
}

/// An untimed replicated database: one master, N slaves, manual pump.
///
/// Useful as a plain library ("give me MySQL-style replication in memory"):
/// writes go to the master, reads to a slave of the caller's choice, and
/// [`ReplicatedDb::pump`] ships and applies all outstanding writesets. The
/// cloud-timed version (network delays, CPU queueing, clock skew) is
/// `amdb_core::Cluster`.
pub struct ReplicatedDb {
    master: Engine,
    master_session: Session,
    slaves: Vec<(Engine, RelayQueue)>,
    /// The publish/tail plane between the master's commits and the relays.
    backend: Box<dyn ReplicationBackend>,
    /// Logical clock fed to `NOW_MICROS()`; bump via [`Self::set_now_micros`].
    now_micros: i64,
    /// Simulated apply workers per slave (1 = the classic serial SQL
    /// thread). See [`Self::set_apply_workers`].
    apply_workers: usize,
}

impl ReplicatedDb {
    /// Build a replicated database with `n_slaves` empty slaves, on the
    /// binlog fan-out backend matching `format`.
    pub fn new(format: BinlogFormat, n_slaves: usize) -> Self {
        let kind = match format {
            BinlogFormat::Statement => BackendKind::Statement,
            BinlogFormat::Row => BackendKind::Row,
        };
        Self::with_backend(kind, n_slaves)
    }

    /// Build a replicated database on an explicit backend kind (the binlog
    /// format follows the backend: shared log ships row images).
    pub fn with_backend(kind: BackendKind, n_slaves: usize) -> Self {
        Self {
            master: Engine::new_master(kind.format()),
            master_session: Session::new(),
            slaves: (0..n_slaves)
                .map(|_| (Engine::new_slave(), RelayQueue::new()))
                .collect(),
            backend: backend_for(kind),
            now_micros: 0,
            apply_workers: 1,
        }
    }

    /// The replication backend in use.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Mutable backend access (tests inject log-replica faults here).
    pub fn backend_mut(&mut self) -> &mut dyn ReplicationBackend {
        self.backend.as_mut()
    }

    /// Number of slaves.
    pub fn n_slaves(&self) -> usize {
        self.slaves.len()
    }

    /// Set the simulated apply-worker count per slave. With `n > 1`,
    /// [`Self::apply_all`] drains each relay in writeset-dependency batches
    /// planned by `amdb-apply` (still committing in LSN order); with 1 it
    /// uses the plain serial loop. Final contents are identical either way —
    /// the regression tests pin that.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn set_apply_workers(&mut self, n: usize) {
        assert!(n >= 1, "apply requires at least one worker");
        self.apply_workers = n;
    }

    /// Configured apply workers per slave.
    pub fn apply_workers(&self) -> usize {
        self.apply_workers
    }

    /// Set the logical wall clock used for `NOW_MICROS()` and commit stamps.
    pub fn set_now_micros(&mut self, micros: i64) {
        self.now_micros = micros;
    }

    /// Execute a write (or any statement) on the master.
    pub fn execute_master(&mut self, sql: &str, params: &[Value]) -> Result<QueryResult, SqlError> {
        self.master_session.now_micros = self.now_micros;
        self.master.execute(&mut self.master_session, sql, params)
    }

    /// Execute a read on slave `i` (sees only applied writesets — reads are
    /// stale until [`Self::pump`] runs, exactly like async replication).
    pub fn execute_slave(
        &mut self,
        i: usize,
        sql: &str,
        params: &[Value],
    ) -> Result<QueryResult, SqlError> {
        let (engine, _) = &mut self.slaves[i];
        let mut session = Session::new();
        session.now_micros = self.now_micros;
        engine.execute(&mut session, sql, params)
    }

    /// Ship all new binlog events into every slave's relay queue (the I/O
    /// threads catching up), without applying: newly committed events are
    /// published to the backend, and each relay tails the backend's
    /// *durable* prefix — under binlog fan-out that is everything published
    /// (pre-trait behaviour, bit for bit); under the shared log a relay
    /// never sees a record the quorum has not acked.
    pub fn ship(&mut self) {
        let new = self.master.binlog_from(self.backend.published_upto());
        self.backend.publish(new);
        for (_, relay) in &mut self.slaves {
            relay.receive(self.backend.tail_from(relay.received_upto()));
        }
    }

    /// Apply everything queued on every slave. Returns events applied.
    pub fn apply_all(&mut self) -> Result<usize, SqlError> {
        let mut applied = 0;
        for (engine, relay) in &mut self.slaves {
            if self.apply_workers <= 1 {
                // Classic single SQL thread.
                while let Some(ev) = relay.pop_next() {
                    engine.apply_event(&ev, self.now_micros)?;
                    relay.mark_applied(ev.lsn);
                    applied += 1;
                }
            } else {
                let mut sched = amdb_apply::ApplyScheduler::new(self.apply_workers);
                loop {
                    let plan = sched.plan_batch(relay.iter(), |t| engine.pk_index_of(t));
                    if plan.len == 0 {
                        break;
                    }
                    // The batch commits in LSN order: pop order *is* LSN
                    // order, and no later event is touched before every
                    // earlier one in the batch has applied.
                    for _ in 0..plan.len {
                        let ev = relay.pop_next().expect("planned events are queued");
                        engine.apply_event(&ev, self.now_micros)?;
                        relay.mark_applied(ev.lsn);
                        applied += 1;
                    }
                }
            }
        }
        Ok(applied)
    }

    /// Ship then apply: brings every slave fully up to date.
    pub fn pump(&mut self) -> Result<usize, SqlError> {
        self.ship();
        self.apply_all()
    }

    /// Direct access to the master engine (e.g. for schema checks).
    pub fn master(&self) -> &Engine {
        &self.master
    }

    /// Direct access to a slave engine.
    pub fn slave(&self, i: usize) -> &Engine {
        &self.slaves[i].0
    }

    /// The relay queue of slave `i` (for staleness inspection).
    pub fn relay(&self, i: usize) -> &RelayQueue {
        &self.slaves[i].1
    }

    /// The master's GTID-style watermark: writesets committed (and therefore
    /// stamped with a monotone sequence) so far. The binlog LSN *is* the
    /// sequence — `master_seq() == n` means sequences `1..=n` exist.
    pub fn master_seq(&self) -> u64 {
        self.master.binlog().head().0
    }

    /// Sequence slave `i`'s SQL thread has applied up to.
    pub fn applied_seq(&self, i: usize) -> u64 {
        self.slaves[i].1.applied_upto().0
    }

    /// Sequence slave `i`'s I/O thread has received up to (relay log tail).
    pub fn received_seq(&self, i: usize) -> u64 {
        self.slaves[i].1.received_upto().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> ReplicatedDb {
        let mut db = ReplicatedDb::new(BinlogFormat::Statement, n);
        db.execute_master(
            "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(32) NOT NULL)",
            &[],
        )
        .unwrap();
        db.pump().unwrap();
        db
    }

    #[test]
    fn writes_replicate_to_all_slaves() {
        let mut db = setup(3);
        db.execute_master("INSERT INTO users VALUES (1, 'a'), (2, 'b')", &[])
            .unwrap();
        db.pump().unwrap();
        for i in 0..3 {
            let r = db
                .execute_slave(i, "SELECT COUNT(*) FROM users", &[])
                .unwrap();
            assert_eq!(r.rows[0][0], Value::Int(2), "slave {i}");
        }
    }

    #[test]
    fn watermarks_track_ship_and_apply() {
        let mut db = setup(2);
        let base = db.master_seq();
        assert_eq!(db.applied_seq(0), base, "setup pumped everything");
        db.execute_master("INSERT INTO users VALUES (1, 'a')", &[])
            .unwrap();
        db.execute_master("INSERT INTO users VALUES (2, 'b')", &[])
            .unwrap();
        assert_eq!(db.master_seq(), base + 2);
        // Not shipped yet: slaves unchanged on both threads.
        assert_eq!(db.received_seq(0), base);
        assert_eq!(db.applied_seq(1), base);
        db.ship();
        assert_eq!(db.received_seq(0), base + 2, "I/O thread caught up");
        assert_eq!(db.applied_seq(0), base, "SQL thread has not");
        db.apply_all().unwrap();
        for i in 0..2 {
            assert_eq!(db.applied_seq(i), base + 2, "slave {i}");
        }
    }

    #[test]
    fn reads_are_stale_until_pumped() {
        let mut db = setup(1);
        db.execute_master("INSERT INTO users VALUES (1, 'a')", &[])
            .unwrap();
        let r = db
            .execute_slave(0, "SELECT COUNT(*) FROM users", &[])
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0), "asynchronous: not yet applied");
        db.pump().unwrap();
        let r = db
            .execute_slave(0, "SELECT COUNT(*) FROM users", &[])
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1), "eventually consistent");
    }

    #[test]
    fn ship_without_apply_fills_relay_only() {
        let mut db = setup(1);
        db.execute_master("INSERT INTO users VALUES (1, 'a')", &[])
            .unwrap();
        db.ship();
        assert_eq!(db.relay(0).queued(), 1);
        let r = db
            .execute_slave(0, "SELECT COUNT(*) FROM users", &[])
            .unwrap();
        assert_eq!(
            r.rows[0][0],
            Value::Int(0),
            "relay received but not applied"
        );
        db.apply_all().unwrap();
        assert_eq!(db.relay(0).queued(), 0);
    }

    #[test]
    fn incremental_shipping_is_idempotent() {
        let mut db = setup(2);
        db.execute_master("INSERT INTO users VALUES (1, 'a')", &[])
            .unwrap();
        db.ship();
        db.ship(); // second ship must not duplicate events
        assert_eq!(db.relay(0).queued(), 1);
        db.apply_all().unwrap();
        db.execute_master("INSERT INTO users VALUES (2, 'b')", &[])
            .unwrap();
        db.pump().unwrap();
        let r = db
            .execute_slave(1, "SELECT COUNT(*) FROM users", &[])
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn updates_and_deletes_replicate() {
        let mut db = setup(1);
        db.execute_master("INSERT INTO users VALUES (1, 'a'), (2, 'b')", &[])
            .unwrap();
        db.execute_master("UPDATE users SET name = 'z' WHERE id = 1", &[])
            .unwrap();
        db.execute_master("DELETE FROM users WHERE id = 2", &[])
            .unwrap();
        db.pump().unwrap();
        let r = db
            .execute_slave(0, "SELECT name FROM users ORDER BY id", &[])
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::from("z")]]);
    }

    #[test]
    fn row_format_replicates_identically() {
        let mut db = ReplicatedDb::new(BinlogFormat::Row, 2);
        db.execute_master("CREATE TABLE t (id INT PRIMARY KEY, v DOUBLE)", &[])
            .unwrap();
        db.execute_master("INSERT INTO t VALUES (1, 0.5)", &[])
            .unwrap();
        db.execute_master("UPDATE t SET v = v * 4 WHERE id = 1", &[])
            .unwrap();
        db.pump().unwrap();
        for i in 0..2 {
            let r = db.execute_slave(i, "SELECT v FROM t", &[]).unwrap();
            assert_eq!(r.rows[0][0], Value::Double(2.0));
        }
    }

    #[test]
    fn batched_apply_matches_serial_contents() {
        let run = |workers: usize| {
            let mut db = ReplicatedDb::new(BinlogFormat::Row, 2);
            db.set_apply_workers(workers);
            db.execute_master("CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[])
                .unwrap();
            for i in 0..20 {
                db.execute_master(
                    "INSERT INTO t VALUES (?, ?)",
                    &[Value::Int(i), Value::Int(0)],
                )
                .unwrap();
            }
            // Repeated conflicting updates on a small key range plus a DDL
            // barrier mid-stream.
            for i in 0..40 {
                db.execute_master("UPDATE t SET v = v + 1 WHERE id = ?", &[Value::Int(i % 5)])
                    .unwrap();
                if i == 17 {
                    db.execute_master("CREATE INDEX iv ON t (v)", &[]).unwrap();
                }
            }
            db.pump().unwrap();
            assert_eq!(
                db.applied_seq(0),
                db.master_seq(),
                "workers={workers}: fully drained"
            );
            (
                db.master().fingerprint(),
                db.slave(0).fingerprint(),
                db.slave(1).fingerprint(),
            )
        };
        let serial = run(1);
        assert_eq!(serial.0, serial.1, "slave converged to master contents");
        for workers in [2, 4, 8] {
            assert_eq!(
                run(workers),
                serial,
                "workers={workers} diverged from serial apply"
            );
        }
    }

    #[test]
    fn shared_log_backend_gates_delivery_on_quorum() {
        let mut db = ReplicatedDb::with_backend(BackendKind::SharedLog, 1);
        assert_eq!(db.backend_kind(), BackendKind::SharedLog);
        db.execute_master("CREATE TABLE t (id INT PRIMARY KEY)", &[])
            .unwrap();
        db.pump().unwrap();
        fn shared(db: &mut ReplicatedDb) -> &mut SharedLogBackend {
            db.backend_mut()
                .as_any_mut()
                .downcast_mut::<SharedLogBackend>()
                .expect("shared-log backend")
        }
        // Two of three log replicas down: quorum unreachable.
        {
            let sl = shared(&mut db);
            sl.log_mut().crash_replica(1);
            sl.log_mut().crash_replica(2);
        }
        db.execute_master("INSERT INTO t VALUES (1)", &[]).unwrap();
        db.pump().unwrap();
        let r = db.execute_slave(0, "SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(
            r.rows[0][0],
            Value::Int(0),
            "non-durable writes must not reach replicas"
        );
        // Quorum restored: the suffix becomes durable and ships.
        {
            let sl = shared(&mut db);
            sl.log_mut().heal_replica(1);
            let upto = sl.log().appended_upto();
            sl.log_mut().ack(1, upto);
        }
        db.pump().unwrap();
        let r = db.execute_slave(0, "SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1), "durable suffix delivered");
    }

    #[test]
    fn mode_names() {
        assert_eq!(ReplMode::Async.name(), "async");
        assert_eq!(ReplMode::SemiSync.name(), "semi-sync");
        assert_eq!(ReplMode::Sync.name(), "sync");
    }
}
