//! The slave-side relay log.

use amdb_sql::{BinlogEvent, Lsn};
use std::collections::VecDeque;

/// Relay queue between a slave's I/O thread (which receives shipped events)
/// and its single SQL apply thread (which drains them in LSN order).
///
/// `received_upto` / `applied_upto` are *head* positions: the next LSN the
/// I/O thread expects, and the next LSN the apply thread will apply. The gap
/// `received_upto - applied_upto` is the apply backlog — the quantity whose
/// growth under load produces the paper's replication-delay surge (Figs 5-6).
#[derive(Debug, Clone, Default)]
pub struct RelayQueue {
    queue: VecDeque<BinlogEvent>,
    received_upto: Lsn,
    applied_upto: Lsn,
    total_received: u64,
    total_applied: u64,
}

impl RelayQueue {
    /// Empty relay positioned at the log start.
    pub fn new() -> Self {
        Self::starting_at(Lsn(0))
    }

    /// Empty relay positioned at `lsn` — for a slave bootstrapped from a
    /// snapshot that already contains everything before `lsn` (how a new or
    /// recovering replica joins a running master).
    pub fn starting_at(lsn: Lsn) -> Self {
        Self {
            queue: VecDeque::new(),
            received_upto: lsn,
            applied_upto: lsn,
            total_received: 0,
            total_applied: 0,
        }
    }

    /// Next LSN the I/O thread expects from the master.
    pub fn received_upto(&self) -> Lsn {
        self.received_upto
    }

    /// Next LSN the apply thread will execute.
    pub fn applied_upto(&self) -> Lsn {
        self.applied_upto
    }

    /// Events queued but not yet applied.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Lifetime counters `(received, applied)`.
    pub fn totals(&self) -> (u64, u64) {
        (self.total_received, self.total_applied)
    }

    /// Receive shipped events. Events below `received_upto` (duplicates from
    /// a re-ship) are discarded; events must otherwise arrive in LSN order.
    pub fn receive(&mut self, events: impl IntoIterator<Item = BinlogEvent>) {
        for ev in events {
            if ev.lsn < self.received_upto {
                continue; // duplicate delivery
            }
            debug_assert_eq!(
                ev.lsn, self.received_upto,
                "relay gap: got {:?}, expected {:?}",
                ev.lsn, self.received_upto
            );
            self.received_upto = Lsn(ev.lsn.0 + 1);
            self.total_received += 1;
            self.queue.push_back(ev);
        }
    }

    /// Take the next event for the apply thread (call [`Self::mark_applied`]
    /// once it has been executed).
    pub fn pop_next(&mut self) -> Option<BinlogEvent> {
        self.queue.pop_front()
    }

    /// Peek the next event without consuming it.
    pub fn peek_next(&self) -> Option<&BinlogEvent> {
        self.queue.front()
    }

    /// Iterate queued events oldest-first without consuming them — the
    /// parallel-apply scheduler's planning view of the queue head.
    pub fn iter(&self) -> impl Iterator<Item = &BinlogEvent> {
        self.queue.iter()
    }

    /// Record that `lsn` has been applied.
    pub fn mark_applied(&mut self, lsn: Lsn) {
        debug_assert_eq!(lsn, self.applied_upto, "applies must be in order");
        self.applied_upto = Lsn(lsn.0 + 1);
        self.total_applied += 1;
    }

    /// Apply backlog in events.
    pub fn backlog(&self) -> u64 {
        self.received_upto.0 - self.applied_upto.0
    }

    /// Master commit timestamp (µs) of the oldest still-queued event —
    /// `now − oldest_commit_ts` is the head-of-queue relay age, the
    /// fleet-telemetry gauge for "how stale is the work this slave has
    /// not even started". `None` when the queue is drained.
    pub fn oldest_commit_ts_micros(&self) -> Option<i64> {
        self.queue.front().map(|ev| ev.commit_ts_micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdb_sql::binlog::EventPayload;

    fn ev(lsn: u64) -> BinlogEvent {
        BinlogEvent {
            lsn: Lsn(lsn),
            commit_ts_micros: lsn as i64,
            payload: EventPayload::Statement {
                sql: format!("-- {lsn}"),
                params: vec![],
            },
        }
    }

    #[test]
    fn oldest_commit_ts_tracks_queue_head() {
        let mut r = RelayQueue::new();
        assert_eq!(r.oldest_commit_ts_micros(), None);
        r.receive([ev(0), ev(1)]);
        assert_eq!(r.oldest_commit_ts_micros(), Some(0));
        let popped = r.pop_next().unwrap();
        r.mark_applied(popped.lsn);
        assert_eq!(r.oldest_commit_ts_micros(), Some(1));
    }

    #[test]
    fn receive_and_apply_in_order() {
        let mut r = RelayQueue::new();
        r.receive([ev(0), ev(1), ev(2)]);
        assert_eq!(r.queued(), 3);
        assert_eq!(r.backlog(), 3);
        let e = r.pop_next().unwrap();
        assert_eq!(e.lsn, Lsn(0));
        r.mark_applied(e.lsn);
        assert_eq!(r.backlog(), 2);
        assert_eq!(r.applied_upto(), Lsn(1));
    }

    #[test]
    fn duplicate_deliveries_discarded() {
        let mut r = RelayQueue::new();
        r.receive([ev(0), ev(1)]);
        r.receive([ev(0), ev(1)]); // duplicate ship
        assert_eq!(r.queued(), 2);
        assert_eq!(r.totals().0, 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = RelayQueue::new();
        r.receive([ev(0)]);
        assert_eq!(r.peek_next().unwrap().lsn, Lsn(0));
        assert_eq!(r.queued(), 1);
    }

    #[test]
    fn starting_at_snapshot_position() {
        let mut r = RelayQueue::starting_at(Lsn(5));
        assert_eq!(r.received_upto(), Lsn(5));
        assert_eq!(r.applied_upto(), Lsn(5));
        // Events before the snapshot are duplicates and ignored.
        r.receive([ev(3), ev(4), ev(5)]);
        assert_eq!(r.queued(), 1);
        assert_eq!(r.peek_next().unwrap().lsn, Lsn(5));
    }

    #[test]
    fn totals_track_lifetime() {
        let mut r = RelayQueue::new();
        r.receive([ev(0), ev(1), ev(2)]);
        while let Some(e) = r.pop_next() {
            r.mark_applied(e.lsn);
        }
        assert_eq!(r.totals(), (3, 3));
        assert_eq!(r.backlog(), 0);
    }
}
