//! The paper's replication-delay instrumentation (§III-A).
//!
//! A `heartbeat` table is created on every replica. A plug-in inserts a row
//! `(global id, NOW_MICROS())` on the **master** once per second. Under
//! *statement* replication each slave re-executes the insert and commits the
//! same global id with **its own** local microsecond timestamp; under *row*
//! replication the shipped row image carries the master's timestamp
//! verbatim, so the slave-side instant is read from the engine's
//! out-of-band apply stamp instead ([`amdb_sql::Engine::apply_time_of`] —
//! without it every row-format heartbeat measured a delay of exactly zero).
//! The replication delay of heartbeat `i` on a slave is then
//! `slave_time(i) − master_ts(i)` — polluted by the clock offset between
//! the two VMs, which the paper cancels by reporting *relative* delay
//! (loaded minus idle, both 5 %-per-tail trimmed; see
//! `amdb-metrics::trimmed_mean`).

use amdb_sql::{Engine, Session, SqlError, Value};

/// Name of the heartbeat table.
pub const HEARTBEAT_TABLE: &str = "heartbeat";

/// DDL for the heartbeat table (mirrors the paper's Heartbeats database: "a
/// 'heartbeat' table which records an id and a timestamp in each row").
pub const HEARTBEAT_SCHEMA: &str =
    "CREATE TABLE heartbeat (id INT PRIMARY KEY, ts TIMESTAMP NOT NULL)";

/// Generates heartbeat inserts with monotonically increasing global ids.
#[derive(Debug, Clone, Default)]
pub struct HeartbeatPlugin {
    next_id: i64,
}

impl HeartbeatPlugin {
    /// New plugin starting at id 1.
    pub fn new() -> Self {
        Self { next_id: 1 }
    }

    /// Ids issued so far.
    pub fn issued(&self) -> i64 {
        self.next_id - 1
    }

    /// Produce the next heartbeat statement `(sql, params)`. The SQL leaves
    /// `NOW_MICROS()` unexpanded so statement-based replication re-evaluates
    /// it per replica.
    pub fn next_insert(&mut self) -> (String, Vec<Value>) {
        let id = self.next_id;
        self.next_id += 1;
        (
            "INSERT INTO heartbeat (id, ts) VALUES (?, NOW_MICROS())".to_string(),
            vec![Value::Int(id)],
        )
    }
}

/// One matched heartbeat: master and slave commit timestamps (local clocks,
/// µs) and the resulting measured delay.
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatSample {
    pub id: i64,
    pub master_ts_micros: i64,
    pub slave_ts_micros: i64,
}

impl HeartbeatSample {
    /// Measured delay in milliseconds (includes clock offset; may be
    /// negative when the slave clock runs behind).
    pub fn delay_ms(&self) -> f64 {
        (self.slave_ts_micros - self.master_ts_micros) as f64 / 1e3
    }
}

/// Join the heartbeat tables of a master and a slave and return all matched
/// samples ordered by id. Heartbeats not yet applied on the slave are absent
/// (their delay is still open-ended).
pub fn collect_samples(
    master: &mut Engine,
    slave: &mut Engine,
) -> Result<Vec<HeartbeatSample>, SqlError> {
    let mut ms = Session::new();
    let mut ss = Session::new();
    let m = master.execute(&mut ms, "SELECT id, ts FROM heartbeat ORDER BY id", &[])?;
    let s = slave.execute(&mut ss, "SELECT id, ts FROM heartbeat ORDER BY id", &[])?;

    // Schema affinity guarantees id reads as Int and ts as Timestamp (the
    // engine normalizes stored values in `Table::validate`); anything else
    // is a corrupt heartbeat table and reports as a typed error, not a
    // panic in the middle of an experiment run.
    let to_pair = |row: &Vec<Value>| -> Result<(i64, i64), SqlError> {
        let id = match row[0] {
            Value::Int(i) => i,
            ref v => {
                return Err(SqlError::TypeMismatch(format!(
                    "heartbeat id must be INT, got {v}"
                )))
            }
        };
        let ts = match row[1] {
            Value::Timestamp(t) => t,
            ref v => {
                return Err(SqlError::TypeMismatch(format!(
                    "heartbeat ts must be TIMESTAMP, got {v}"
                )))
            }
        };
        Ok((id, ts))
    };

    let slave_map: std::collections::BTreeMap<i64, i64> = s
        .rows
        .iter()
        .map(&to_pair)
        .collect::<Result<_, SqlError>>()?;
    let mut out = Vec::with_capacity(slave_map.len());
    for row in &m.rows {
        let (id, master_ts) = to_pair(row)?;
        if let Some(&stored_ts) = slave_map.get(&id) {
            // Row-applied heartbeats stored the master's timestamp verbatim;
            // their true local commit instant lives in the apply stamp.
            // Statement-applied heartbeats re-evaluated NOW_MICROS() against
            // the slave clock, so the stored value already is that instant.
            let slave_ts = slave
                .apply_time_of(HEARTBEAT_TABLE, &Value::Int(id))
                .map(|at| at as i64)
                .unwrap_or(stored_ts);
            out.push(HeartbeatSample {
                id,
                master_ts_micros: master_ts,
                slave_ts_micros: slave_ts,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdb_sql::{BinlogFormat, Lsn};

    #[test]
    fn plugin_issues_sequential_ids() {
        let mut hb = HeartbeatPlugin::new();
        let (sql, p1) = hb.next_insert();
        let (_, p2) = hb.next_insert();
        assert!(sql.contains("NOW_MICROS()"));
        assert_eq!(p1, vec![Value::Int(1)]);
        assert_eq!(p2, vec![Value::Int(2)]);
        assert_eq!(hb.issued(), 2);
    }

    #[test]
    fn end_to_end_delay_measurement() {
        let mut master = Engine::new_master(BinlogFormat::Statement);
        let mut slave = Engine::new_slave();
        let mut ms = Session::new();
        master.execute_batch(&mut ms, HEARTBEAT_SCHEMA).unwrap();

        let mut hb = HeartbeatPlugin::new();
        // Three heartbeats at master-local times 1s, 2s, 3s.
        for t in 1..=3i64 {
            ms.now_micros = t * 1_000_000;
            let (sql, params) = hb.next_insert();
            master.execute(&mut ms, &sql, &params).unwrap();
        }
        // Slave applies them 250 ms (of slave-local clock) later each. The
        // first binlog event is the CREATE TABLE DDL; heartbeats follow.
        let events: Vec<_> = master.binlog_from(Lsn(0)).to_vec();
        slave.apply_event(&events[0], 0).unwrap();
        for (i, ev) in events[1..].iter().enumerate() {
            let slave_now = (i as i64 + 1) * 1_000_000 + 250_000;
            slave.apply_event(ev, slave_now).unwrap();
        }

        let samples = collect_samples(&mut master, &mut slave).unwrap();
        assert_eq!(samples.len(), 3);
        for s in &samples {
            assert!(
                (s.delay_ms() - 250.0).abs() < 1e-9,
                "delay {}",
                s.delay_ms()
            );
        }
    }

    #[test]
    fn row_format_delay_reads_apply_stamp_not_shipped_timestamp() {
        // Regression: under ROW binlog format the shipped heartbeat row
        // carries the master's timestamp verbatim, so reading delay from
        // stored data alone reported exactly 0 ms for every heartbeat no
        // matter how far the slave lagged.
        let mut master = Engine::new_master(BinlogFormat::Row);
        let mut slave = Engine::new_slave();
        let mut ms = Session::new();
        master.execute_batch(&mut ms, HEARTBEAT_SCHEMA).unwrap();

        let mut hb = HeartbeatPlugin::new();
        for t in 1..=3i64 {
            ms.now_micros = t * 1_000_000;
            let (sql, params) = hb.next_insert();
            master.execute(&mut ms, &sql, &params).unwrap();
        }
        // Slave applies each heartbeat 250 ms of slave-local clock later.
        let events: Vec<_> = master.binlog_from(Lsn(0)).to_vec();
        slave.apply_event(&events[0], 0).unwrap();
        for (i, ev) in events[1..].iter().enumerate() {
            let slave_now = (i as i64 + 1) * 1_000_000 + 250_000;
            slave.apply_event(ev, slave_now).unwrap();
        }

        let samples = collect_samples(&mut master, &mut slave).unwrap();
        assert_eq!(samples.len(), 3);
        for s in &samples {
            assert!(
                (s.delay_ms() - 250.0).abs() < 1e-9,
                "row-format heartbeat {} must show the real 250 ms lag, got {} ms",
                s.id,
                s.delay_ms()
            );
        }
    }

    #[test]
    fn unapplied_heartbeats_are_absent() {
        let mut master = Engine::new_master(BinlogFormat::Statement);
        let mut slave = Engine::new_slave();
        let mut ms = Session::new();
        master.execute_batch(&mut ms, HEARTBEAT_SCHEMA).unwrap();
        let mut hb = HeartbeatPlugin::new();
        for _ in 0..3 {
            let (sql, params) = hb.next_insert();
            master.execute(&mut ms, &sql, &params).unwrap();
        }
        // Apply only the schema + first heartbeat.
        let events: Vec<_> = master.binlog_from(Lsn(0)).to_vec();
        for ev in &events[..2] {
            slave.apply_event(ev, 0).unwrap();
        }
        let samples = collect_samples(&mut master, &mut slave).unwrap();
        assert_eq!(samples.len(), 1, "two heartbeats still in flight");
        assert_eq!(samples[0].id, 1);
    }

    #[test]
    fn corrupt_heartbeat_table_reports_typed_error() {
        // A heartbeat table with the wrong ts affinity (INT instead of
        // TIMESTAMP) used to hit an `unreachable!`; it must surface as a
        // typed SqlError so experiment drivers can fail cleanly.
        let mut master = Engine::new_master(BinlogFormat::Statement);
        let mut slave = Engine::new_slave();
        let mut ms = Session::new();
        master
            .execute_batch(
                &mut ms,
                "CREATE TABLE heartbeat (id INT PRIMARY KEY, ts INT NOT NULL)",
            )
            .unwrap();
        master
            .execute(
                &mut ms,
                "INSERT INTO heartbeat (id, ts) VALUES (1, 42)",
                &[],
            )
            .unwrap();
        for ev in master.binlog_from(Lsn(0)).to_vec() {
            slave.apply_event(&ev, 0).unwrap();
        }
        let err = collect_samples(&mut master, &mut slave).unwrap_err();
        assert!(matches!(err, SqlError::TypeMismatch(_)), "got {err}");
        assert!(err.to_string().contains("heartbeat ts"), "got {err}");
    }

    #[test]
    fn negative_delay_possible_with_clock_skew() {
        let s = HeartbeatSample {
            id: 1,
            master_ts_micros: 1_000_000,
            slave_ts_micros: 998_500,
        };
        assert!((s.delay_ms() + 1.5).abs() < 1e-9);
    }
}
