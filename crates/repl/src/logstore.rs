//! The shared log service: a simulated 3-way-replicated, quorum-acked log.
//!
//! Taurus-style disaggregation (PAPERS.md, arXiv 2412.02792) replaces
//! master→slave writeset shipping with "the log is the database": the master
//! appends LSN-stamped records to a small replicated log service, a record is
//! *durable* once a write quorum of log replicas has acknowledged it, and
//! read replicas tail the durable prefix. Failover becomes a *reattach* —
//! the new master resumes from the last durable quorum LSN instead of
//! rebuilding peers from a snapshot.
//!
//! [`LogStore`] is the untimed protocol state machine: appends assign
//! positions, per-replica acks advance contiguous persisted prefixes, and
//! `durable_upto` is the quorum-th highest prefix. The *timed* behaviour
//! (when each ack lands on the simulated clock) is computed analytically by
//! [`ack_time_us`] from a per-replica [`FaultTimeline`] and a [`RetryPolicy`]
//! — no retained event state, so the hot path of a statement-backend run
//! never touches any of this.

use amdb_sql::Lsn;

/// Shape of the replicated log service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogStoreConfig {
    /// Log replicas (the paper-typical 3).
    pub replicas: usize,
    /// Acks required for durability (2 of 3).
    pub quorum: usize,
    /// Base per-replica append service time, µs (network + fsync).
    pub append_service_us: u64,
    /// Retry discipline for replica appends that time out.
    pub retry: RetryPolicy,
}

impl Default for LogStoreConfig {
    fn default() -> Self {
        Self {
            replicas: 3,
            quorum: 2,
            append_service_us: 400,
            retry: RetryPolicy::default(),
        }
    }
}

impl LogStoreConfig {
    /// Panics unless `1 <= quorum <= replicas`.
    pub fn validate(&self) {
        assert!(self.replicas >= 1, "log store needs at least one replica");
        assert!(
            (1..=self.replicas).contains(&self.quorum),
            "quorum {} out of range for {} replicas",
            self.quorum,
            self.replicas
        );
    }
}

/// Per-attempt timeout plus exponential backoff with a hard ceiling — the
/// "no unbounded retry" discipline: the *delay* between attempts saturates at
/// `backoff_max_us`, and a single append gives up on a replica after
/// `max_attempts` (the replica re-syncs when it heals; durability comes from
/// the quorum, not from every replica).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Per-attempt timeout, µs.
    pub timeout_us: u64,
    /// First retry delay, µs; doubles each attempt.
    pub backoff_base_us: u64,
    /// Backoff ceiling, µs.
    pub backoff_max_us: u64,
    /// Attempts before this append abandons the replica.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            timeout_us: 2_000,
            backoff_base_us: 1_000,
            backoff_max_us: 64_000,
            max_attempts: 12,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based: the delay after the
    /// first failed attempt is `backoff_us(1)`). Exponential, saturating at
    /// `backoff_max_us`.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        self.backoff_base_us
            .saturating_mul(1u64 << shift)
            .min(self.backoff_max_us)
    }

    /// Hard bound on one full attempt sequence: the offset (µs) past the
    /// send instant at which [`ack_time_us`] gives up. Every inter-attempt
    /// delay is `timeout + backoff` with the backoff capped, so the sum is
    /// finite — the no-unbounded-retry guarantee, in closed form.
    pub fn give_up_after_us(&self) -> u64 {
        (1..=self.max_attempts)
            .map(|k| self.timeout_us.saturating_add(self.backoff_us(k)))
            .fold(0u64, u64::saturating_add)
    }
}

/// Precomputed fault schedule of one log replica: sorted, disjoint down
/// windows (crash or network partition — indistinguishable to the appender)
/// plus slow-disk windows that stretch append service time. Computed once
/// per run from seeded RNG draws, so fault injection costs nothing when the
/// shared-log backend is off and stays deterministic when it is on.
#[derive(Debug, Clone, Default)]
pub struct FaultTimeline {
    /// `(start_us, end_us)` half-open windows in which the replica is
    /// unreachable. Sorted, disjoint.
    down: Vec<(u64, u64)>,
    /// `(start_us, end_us, factor)` windows in which append service time is
    /// multiplied by `factor` (slow disk). Sorted, disjoint.
    slow: Vec<(u64, u64, f64)>,
}

impl FaultTimeline {
    /// A replica that never fails.
    pub fn healthy() -> Self {
        Self::default()
    }

    /// Build from explicit windows (tests, hand-crafted scenarios). Windows
    /// must be sorted and disjoint; debug-asserted.
    pub fn from_windows(down: Vec<(u64, u64)>, slow: Vec<(u64, u64, f64)>) -> Self {
        debug_assert!(down.windows(2).all(|w| w[0].1 <= w[1].0), "down sorted");
        debug_assert!(slow.windows(2).all(|w| w[0].1 <= w[1].0), "slow sorted");
        Self { down, slow }
    }

    /// Whether the replica is unreachable at `t_us`.
    pub fn is_down(&self, t_us: u64) -> bool {
        self.down.iter().any(|&(s, e)| (s..e).contains(&t_us))
    }

    /// Earliest instant `>= t_us` at which the replica is reachable, or
    /// `None` when it stays down forever (an unbounded final window).
    pub fn next_up(&self, t_us: u64) -> Option<u64> {
        for &(s, e) in &self.down {
            if (s..e).contains(&t_us) {
                return if e == u64::MAX { None } else { Some(e) };
            }
        }
        Some(t_us)
    }

    /// Slow-disk service-time multiplier in effect at `t_us` (1.0 = healthy).
    pub fn disk_factor(&self, t_us: u64) -> f64 {
        self.slow
            .iter()
            .find(|&&(s, e, _)| (s..e).contains(&t_us))
            .map(|&(_, _, f)| f)
            .unwrap_or(1.0)
    }

    /// Total down time within `[0, horizon_us)` — reporting aid.
    pub fn downtime_us(&self, horizon_us: u64) -> u64 {
        self.down
            .iter()
            .map(|&(s, e)| e.min(horizon_us).saturating_sub(s.min(horizon_us)))
            .sum()
    }
}

/// Outcome of one append attempt sequence against one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaAck {
    /// Instant the ack lands at the master, µs. `None`: the append abandoned
    /// this replica (attempt cap under sustained partition).
    pub acked_at_us: Option<u64>,
    /// Attempts spent (1 = first try succeeded).
    pub attempts: u32,
}

/// Analytically compute when replica `timeline`'s ack for an append issued
/// at `sent_us` lands, under `policy`. An attempt issued while the replica
/// is down (or that starts while up but we model the window check at issue
/// time) burns the full `timeout_us`, then waits the capped backoff; an
/// attempt issued while up completes in `service_us` stretched by the
/// slow-disk factor. Pure function of its inputs — determinism for free.
pub fn ack_time_us(
    timeline: &FaultTimeline,
    policy: &RetryPolicy,
    sent_us: u64,
    service_us: u64,
) -> ReplicaAck {
    let mut t = sent_us;
    for attempt in 1..=policy.max_attempts {
        if !timeline.is_down(t) {
            let service = (service_us as f64 * timeline.disk_factor(t)).round() as u64;
            let done = t + service.max(1);
            // The reply must also make it back: if the replica partitions
            // mid-service the attempt still times out.
            if !timeline.is_down(done.saturating_sub(1)) {
                return ReplicaAck {
                    acked_at_us: Some(done),
                    attempts: attempt,
                };
            }
        }
        t = t + policy.timeout_us + policy.backoff_us(attempt);
    }
    ReplicaAck {
        acked_at_us: None,
        attempts: policy.max_attempts,
    }
}

/// Result of [`LogStore::ack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckResult {
    /// This ack advanced the durable prefix to the carried LSN.
    Durable(Lsn),
    /// Accepted, but the quorum for some appended records is still pending.
    Pending,
    /// The replica had already acknowledged at or past this position —
    /// a retransmitted ack, dropped.
    DuplicateIgnored,
    /// Accepted, but everything up to this position was already durable
    /// (the quorum formed without this replica; its late ack only catches
    /// the replica itself up).
    LateAfterQuorum,
    /// The replica is crashed; the ack was lost in flight.
    ReplicaDown,
}

/// Per-replica persistence state: a contiguous prefix. Replica logs are
/// append-only and gap-free, so one cursor is the whole story.
#[derive(Debug, Clone)]
struct LogReplicaState {
    /// Persisted (fsynced + acked) up to this LSN, exclusive.
    persisted_upto: u64,
    alive: bool,
}

/// The untimed quorum state machine: who has what, and what is durable.
///
/// The timed cluster drives this with acks whose *instants* come from
/// [`ack_time_us`]; unit and property tests drive it directly to pin the
/// protocol edges (duplicate/late acks, death between append and ack,
/// truncated-replica reattach).
#[derive(Debug, Clone)]
pub struct LogStore {
    cfg: LogStoreConfig,
    /// Append head: positions `[0, appended_upto)` have been assigned.
    appended_upto: u64,
    /// Durable prefix: quorum-acked up to here, exclusive. Monotone.
    durable_upto: u64,
    replicas: Vec<LogReplicaState>,
}

impl LogStore {
    /// Fresh log service, all replicas alive and empty.
    pub fn new(cfg: LogStoreConfig) -> Self {
        cfg.validate();
        Self {
            replicas: (0..cfg.replicas)
                .map(|_| LogReplicaState {
                    persisted_upto: 0,
                    alive: true,
                })
                .collect(),
            cfg,
            appended_upto: 0,
            durable_upto: 0,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &LogStoreConfig {
        &self.cfg
    }

    /// Assign positions for `count` new records; returns the first LSN of
    /// the batch. Delivery to replicas is in flight until they ack.
    pub fn append(&mut self, count: u64) -> Lsn {
        let first = self.appended_upto;
        self.appended_upto += count;
        Lsn(first)
    }

    /// Append head (next LSN to be assigned).
    pub fn appended_upto(&self) -> Lsn {
        Lsn(self.appended_upto)
    }

    /// Durable prefix: every LSN below this has a write quorum.
    pub fn durable_upto(&self) -> Lsn {
        Lsn(self.durable_upto)
    }

    /// Replica `r`'s persisted prefix (exclusive).
    pub fn replica_upto(&self, r: usize) -> Lsn {
        Lsn(self.replicas[r].persisted_upto)
    }

    /// Is replica `r` alive?
    pub fn replica_alive(&self, r: usize) -> bool {
        self.replicas[r].alive
    }

    /// Count of live replicas.
    pub fn alive_replicas(&self) -> usize {
        self.replicas.iter().filter(|r| r.alive).count()
    }

    /// Replica `r` acknowledges persistence up to `upto` (exclusive).
    pub fn ack(&mut self, r: usize, upto: Lsn) -> AckResult {
        let upto = upto.0.min(self.appended_upto);
        let rep = &mut self.replicas[r];
        if !rep.alive {
            return AckResult::ReplicaDown;
        }
        if upto <= rep.persisted_upto {
            return AckResult::DuplicateIgnored;
        }
        rep.persisted_upto = upto;
        let durable = self.quorum_prefix();
        if durable > self.durable_upto {
            self.durable_upto = durable;
            AckResult::Durable(Lsn(durable))
        } else if upto <= self.durable_upto {
            AckResult::LateAfterQuorum
        } else {
            AckResult::Pending
        }
    }

    /// The quorum-th highest persisted prefix over *all* replicas (dead
    /// replicas keep their durably persisted prefix on disk — a crash does
    /// not un-fsync; truncation is modelled separately).
    fn quorum_prefix(&self) -> u64 {
        let mut tails: Vec<u64> = self.replicas.iter().map(|r| r.persisted_upto).collect();
        tails.sort_unstable_by(|a, b| b.cmp(a));
        tails[self.cfg.quorum - 1]
    }

    /// Crash replica `r`: in-flight acks are lost ([`AckResult::ReplicaDown`])
    /// until [`Self::heal_replica`]. Its persisted prefix survives on disk.
    pub fn crash_replica(&mut self, r: usize) {
        self.replicas[r].alive = false;
    }

    /// Replica `r` comes back; it still has its persisted prefix and will
    /// re-sync the rest from its peers (instantaneous in the untimed model).
    pub fn heal_replica(&mut self, r: usize) {
        let rep = &mut self.replicas[r];
        rep.alive = true;
        rep.persisted_upto = rep.persisted_upto.max(self.durable_upto);
    }

    /// Truncate replica `r`'s log to `to` (exclusive) — a disk that lied
    /// about fsync, losing a suffix. At most the quorum guarantee tolerates
    /// `replicas - quorum` such faults before durable data is at risk.
    pub fn truncate_replica(&mut self, r: usize, to: Lsn) {
        let rep = &mut self.replicas[r];
        rep.persisted_upto = rep.persisted_upto.min(to.0);
    }

    /// The LSN a recovering master reattaches from: the highest persisted
    /// prefix among *live* replicas. As long as faults stay within the
    /// quorum tolerance (`replicas - quorum` truncations/crashes), this is
    /// `>= durable_upto` — no acked write is lost. Pinned by the
    /// `prop_logstore` property test.
    pub fn reattach_lsn(&self) -> Lsn {
        Lsn(self
            .replicas
            .iter()
            .filter(|r| r.alive)
            .map(|r| r.persisted_upto)
            .max()
            .unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> LogStore {
        LogStore::new(LogStoreConfig::default())
    }

    #[test]
    fn quorum_of_two_makes_durable() {
        let mut s = store();
        assert_eq!(s.append(3), Lsn(0));
        assert_eq!(s.appended_upto(), Lsn(3));
        assert_eq!(s.durable_upto(), Lsn(0), "no acks yet");
        assert_eq!(s.ack(0, Lsn(3)), AckResult::Pending, "1/2 acks");
        assert_eq!(s.ack(1, Lsn(3)), AckResult::Durable(Lsn(3)));
        assert_eq!(s.durable_upto(), Lsn(3));
    }

    #[test]
    fn duplicate_and_late_acks_after_quorum() {
        let mut s = store();
        s.append(2);
        s.ack(0, Lsn(2));
        assert_eq!(s.ack(1, Lsn(2)), AckResult::Durable(Lsn(2)));
        // Retransmission of an already-counted ack: dropped.
        assert_eq!(s.ack(0, Lsn(2)), AckResult::DuplicateIgnored);
        assert_eq!(s.ack(1, Lsn(1)), AckResult::DuplicateIgnored);
        // The third replica's first ack lands after the quorum formed: it
        // catches the replica up but moves nothing.
        assert_eq!(s.ack(2, Lsn(2)), AckResult::LateAfterQuorum);
        assert_eq!(s.durable_upto(), Lsn(2), "unchanged by late ack");
    }

    #[test]
    fn replica_death_between_append_and_ack_loses_the_ack() {
        let mut s = store();
        s.append(1);
        s.crash_replica(2);
        assert_eq!(s.ack(2, Lsn(1)), AckResult::ReplicaDown);
        assert_eq!(s.replica_upto(2), Lsn(0), "lost ack advanced nothing");
        // The surviving pair still reaches quorum.
        s.ack(0, Lsn(1));
        assert_eq!(s.ack(1, Lsn(1)), AckResult::Durable(Lsn(1)));
        // Healing re-syncs the corpse to at least the durable prefix.
        s.heal_replica(2);
        assert_eq!(s.replica_upto(2), Lsn(1));
    }

    #[test]
    fn reattach_from_truncated_replica_keeps_durable_prefix() {
        let mut s = store();
        s.append(10);
        s.ack(0, Lsn(10));
        s.ack(1, Lsn(10));
        s.ack(2, Lsn(4));
        assert_eq!(s.durable_upto(), Lsn(10));
        // Replica 1's disk lied: its suffix beyond 6 evaporates. Replica 0
        // still holds the full durable prefix, so reattach loses nothing.
        s.truncate_replica(1, Lsn(6));
        assert_eq!(s.replica_upto(1), Lsn(6));
        assert!(s.reattach_lsn() >= s.durable_upto());
        // Even with the truncated replica also crashed, the quorum guarantee
        // (one fault of each kind tolerated at quorum 2/3) holds via 0.
        s.crash_replica(1);
        assert!(s.reattach_lsn() >= s.durable_upto());
    }

    #[test]
    fn truncation_never_advances_a_replica() {
        let mut s = store();
        s.append(5);
        s.ack(0, Lsn(3));
        s.truncate_replica(0, Lsn(9));
        assert_eq!(s.replica_upto(0), Lsn(3), "truncate only shrinks");
    }

    #[test]
    fn ack_past_append_head_is_clamped() {
        let mut s = store();
        s.append(2);
        assert_eq!(s.ack(0, Lsn(99)), AckResult::Pending);
        assert_eq!(s.replica_upto(0), Lsn(2));
    }

    #[test]
    fn backoff_saturates_at_ceiling() {
        let p = RetryPolicy {
            timeout_us: 1_000,
            backoff_base_us: 500,
            backoff_max_us: 4_000,
            max_attempts: 40,
        };
        assert_eq!(p.backoff_us(1), 500);
        assert_eq!(p.backoff_us(2), 1_000);
        assert_eq!(p.backoff_us(4), 4_000, "hits ceiling");
        assert_eq!(p.backoff_us(39), 4_000, "stays at ceiling, no overflow");
    }

    #[test]
    fn ack_time_healthy_is_one_service() {
        let a = ack_time_us(
            &FaultTimeline::healthy(),
            &RetryPolicy::default(),
            1_000,
            400,
        );
        assert_eq!(
            a,
            ReplicaAck {
                acked_at_us: Some(1_400),
                attempts: 1
            }
        );
    }

    #[test]
    fn ack_time_retries_through_a_partition() {
        let tl = FaultTimeline::from_windows(vec![(0, 10_000)], vec![]);
        let p = RetryPolicy {
            timeout_us: 2_000,
            backoff_base_us: 1_000,
            backoff_max_us: 64_000,
            max_attempts: 12,
        };
        let a = ack_time_us(&tl, &p, 0, 400);
        // Attempts at 0 (down), 3_000 (down), 7_000 (down), 13_000 (up):
        // each retry waits timeout + doubling backoff.
        assert_eq!(a.attempts, 4);
        assert_eq!(a.acked_at_us, Some(13_400));
    }

    #[test]
    fn sustained_partition_hits_attempt_cap_with_bounded_delay() {
        let tl = FaultTimeline::from_windows(vec![(0, u64::MAX)], vec![]);
        let p = RetryPolicy {
            timeout_us: 1_000,
            backoff_base_us: 1_000,
            backoff_max_us: 8_000,
            max_attempts: 6,
        };
        let a = ack_time_us(&tl, &p, 0, 400);
        assert_eq!(a.acked_at_us, None, "abandoned after the cap");
        assert_eq!(a.attempts, 6);
        // The total wait is bounded: every inter-attempt delay saturates at
        // timeout + ceiling, so a sustained partition cannot park an append
        // for an unbounded stretch.
        let worst: u64 = (1..=6).map(|k| p.timeout_us + p.backoff_us(k)).sum();
        assert_eq!(p.give_up_after_us(), worst);
        assert!(worst <= 6 * (p.timeout_us + p.backoff_max_us));
    }

    #[test]
    fn slow_disk_stretches_service() {
        let tl = FaultTimeline::from_windows(vec![], vec![(0, 10_000, 5.0)]);
        let a = ack_time_us(&tl, &RetryPolicy::default(), 100, 400);
        assert_eq!(a.acked_at_us, Some(100 + 2_000));
        assert_eq!(a.attempts, 1);
    }

    #[test]
    fn partition_landing_mid_service_times_out_the_attempt() {
        // Up at issue time, but down before the reply returns.
        let tl = FaultTimeline::from_windows(vec![(200, 5_000)], vec![]);
        let p = RetryPolicy {
            timeout_us: 1_000,
            backoff_base_us: 500,
            backoff_max_us: 8_000,
            max_attempts: 5,
        };
        let a = ack_time_us(&tl, &p, 0, 400);
        // t=0 attempt: service would finish at 400, inside the window →
        // timeout. Retry at 1_500 (down) → timeout. Retry at 3_500 (down)
        // → timeout. Retry at 6_500: up, acks at 6_900.
        assert_eq!(a.attempts, 4);
        assert_eq!(a.acked_at_us, Some(6_900));
    }

    #[test]
    fn downtime_accounting() {
        let tl = FaultTimeline::from_windows(vec![(100, 200), (300, 1_000)], vec![]);
        assert!(tl.is_down(150));
        assert!(!tl.is_down(250));
        assert_eq!(tl.next_up(150), Some(200));
        assert_eq!(tl.next_up(250), Some(250));
        assert_eq!(tl.downtime_us(500), 100 + 200);
        assert_eq!(tl.downtime_us(2_000), 100 + 700);
    }
}
