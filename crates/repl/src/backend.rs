//! The replication backend seam: *how* committed writesets become durable
//! and reach the replicas.
//!
//! The paper's design (and this repo's original pipeline) is binlog fan-out:
//! the master's binlog is the only durable copy, slaves pull from it, and
//! losing the master loses its unshipped tail. ROADMAP item 5 asks for the
//! modern alternative behind one trait so the same experiments can compare
//! the designs: a Taurus-style shared log ([`crate::logstore`]) where the
//! durable copy lives in a quorum-replicated log service, replicas tail the
//! durable prefix, and failover reattaches to the log instead of rebuilding.
//!
//! [`ReplicationBackend`] captures exactly the seam both designs share:
//! publish committed events, ask what is durable, serve a tail, and name the
//! reattach point after master loss. The untimed [`crate::ReplicatedDb`]
//! pumps through a boxed backend; the timed `amdb_core::Cluster` keeps its
//! bit-identical direct path for the binlog backends and drives a
//! [`crate::logstore::LogStore`] for the shared log.

use crate::logstore::{LogStore, LogStoreConfig};
use amdb_sql::{BinlogEvent, BinlogFormat, Lsn};

/// Which replication backend a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Statement-shipping binlog fan-out — the paper's setup and this
    /// repo's baseline. Bit-identical to pre-trait behaviour.
    #[default]
    Statement,
    /// Row-image binlog fan-out (ablation A3's format, same fan-out plane).
    Row,
    /// Quorum-replicated shared log; replicas tail the durable prefix.
    SharedLog,
}

impl BackendKind {
    /// Display / CLI name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Statement => "statement",
            BackendKind::Row => "row",
            BackendKind::SharedLog => "shared-log",
        }
    }

    /// Parse a CLI spelling (`--backend <name>`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "statement" | "stmt" => Some(BackendKind::Statement),
            "row" => Some(BackendKind::Row),
            "shared-log" | "shared_log" | "sharedlog" => Some(BackendKind::SharedLog),
            _ => None,
        }
    }

    /// The binlog format this backend ships. The shared log carries row
    /// images: log records are physical, replica apply is deterministic
    /// per-row — statement re-execution has no place in a log-is-the-
    /// database design.
    pub fn format(self) -> BinlogFormat {
        match self {
            BackendKind::Statement => BinlogFormat::Statement,
            BackendKind::Row | BackendKind::SharedLog => BinlogFormat::Row,
        }
    }

    /// All backends, in comparison-table order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Statement,
        BackendKind::Row,
        BackendKind::SharedLog,
    ];
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The seam between commit and replica delivery.
///
/// Contract: `publish` is called with committed events in LSN order, each
/// batch contiguous with the previous one; `durable_upto() <=
/// published_upto()` always; `tail_from` serves only the durable prefix —
/// a replica must never apply a write that a failover could retract.
pub trait ReplicationBackend {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Accept newly committed events (contiguous, LSN order).
    fn publish(&mut self, events: &[BinlogEvent]);

    /// LSN (exclusive) up to which publishes have been accepted.
    fn published_upto(&self) -> Lsn;

    /// LSN (exclusive) below which events are durable — safe to serve to
    /// replicas and guaranteed to survive master loss *under this backend's
    /// failure model*. Binlog fan-out: everything published (durable only as
    /// long as the master lives). Shared log: the quorum-acked prefix.
    fn durable_upto(&self) -> Lsn;

    /// The durable events in `[from, durable_upto())`, for a tailing
    /// replica.
    fn tail_from(&self, from: Lsn) -> Vec<BinlogEvent>;

    /// Where a new master resumes after the old one is lost. Binlog
    /// fan-out: `Lsn(0)` — the backend itself preserves nothing; recovery
    /// falls back to the best replica's applied position (the §II data-loss
    /// window). Shared log: the reattach LSN of the surviving log replicas.
    fn recovery_lsn(&self) -> Lsn;

    /// Downcast hook so callers holding a boxed backend can reach concrete
    /// controls (e.g. [`SharedLogBackend::log_mut`] for fault injection).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// The classic pipeline as a backend: publishes are retained and served to
/// every replica immediately — durability equals publication, and nothing
/// outlives the master.
#[derive(Debug, Default)]
pub struct BinlogFanout {
    kind: BackendKind,
    events: Vec<BinlogEvent>,
    base: u64,
}

impl BinlogFanout {
    /// A fan-out backend of the given kind (`Statement` or `Row`).
    pub fn new(kind: BackendKind) -> Self {
        assert!(
            kind != BackendKind::SharedLog,
            "shared log is not a fan-out backend"
        );
        Self {
            kind,
            events: Vec::new(),
            base: 0,
        }
    }
}

impl ReplicationBackend for BinlogFanout {
    fn kind(&self) -> BackendKind {
        self.kind
    }

    fn publish(&mut self, events: &[BinlogEvent]) {
        if let Some(first) = events.first() {
            debug_assert_eq!(
                first.lsn.0,
                self.base + self.events.len() as u64,
                "publishes must be contiguous"
            );
        }
        self.events.extend_from_slice(events);
    }

    fn published_upto(&self) -> Lsn {
        Lsn(self.base + self.events.len() as u64)
    }

    fn durable_upto(&self) -> Lsn {
        self.published_upto()
    }

    fn tail_from(&self, from: Lsn) -> Vec<BinlogEvent> {
        let i = (from.0.saturating_sub(self.base) as usize).min(self.events.len());
        self.events[i..].to_vec()
    }

    fn recovery_lsn(&self) -> Lsn {
        Lsn(0)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The shared log as a backend: publishes append to the quorum state
/// machine; in the untimed model every live replica acks instantly, so the
/// durable prefix trails publication only while replicas are crashed.
/// Tests reach through [`SharedLogBackend::log_mut`] to crash, truncate and
/// heal replicas between pumps.
#[derive(Debug)]
pub struct SharedLogBackend {
    log: LogStore,
    events: Vec<BinlogEvent>,
    base: u64,
}

impl SharedLogBackend {
    /// A shared-log backend over a fresh log service.
    pub fn new(cfg: LogStoreConfig) -> Self {
        Self {
            log: LogStore::new(cfg),
            events: Vec::new(),
            base: 0,
        }
    }

    /// The quorum state machine (inject faults, inspect replicas).
    pub fn log_mut(&mut self) -> &mut LogStore {
        &mut self.log
    }

    /// Immutable view of the quorum state machine.
    pub fn log(&self) -> &LogStore {
        &self.log
    }
}

impl ReplicationBackend for SharedLogBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SharedLog
    }

    fn publish(&mut self, events: &[BinlogEvent]) {
        if events.is_empty() {
            return;
        }
        debug_assert_eq!(
            events[0].lsn.0,
            self.base + self.events.len() as u64,
            "publishes must be contiguous"
        );
        let first = self.log.append(events.len() as u64);
        debug_assert_eq!(first.0, events[0].lsn.0, "log positions track LSNs");
        self.events.extend_from_slice(events);
        // Untimed model: every live replica persists and acks in the same
        // pump. The timed cluster spreads these acks over simulated time.
        let upto = self.log.appended_upto();
        for r in 0..self.log.config().replicas {
            if self.log.replica_alive(r) {
                let _ = self.log.ack(r, upto);
            }
        }
    }

    fn published_upto(&self) -> Lsn {
        Lsn(self.base + self.events.len() as u64)
    }

    fn durable_upto(&self) -> Lsn {
        self.log.durable_upto()
    }

    fn tail_from(&self, from: Lsn) -> Vec<BinlogEvent> {
        let durable = self.log.durable_upto().0;
        let lo = (from.0.saturating_sub(self.base) as usize).min(self.events.len());
        let hi = (durable.saturating_sub(self.base) as usize).min(self.events.len());
        self.events[lo..hi.max(lo)].to_vec()
    }

    fn recovery_lsn(&self) -> Lsn {
        self.log.reattach_lsn()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Construct the backend for `kind` with default shared-log configuration.
pub fn backend_for(kind: BackendKind) -> Box<dyn ReplicationBackend> {
    match kind {
        BackendKind::Statement | BackendKind::Row => Box::new(BinlogFanout::new(kind)),
        BackendKind::SharedLog => Box::new(SharedLogBackend::new(LogStoreConfig::default())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdb_sql::EventPayload;

    fn ev(lsn: u64) -> BinlogEvent {
        BinlogEvent {
            lsn: Lsn(lsn),
            commit_ts_micros: lsn as i64,
            payload: EventPayload::Statement {
                sql: "x".into(),
                params: vec![],
            },
        }
    }

    #[test]
    fn kind_parse_round_trips() {
        for k in BackendKind::ALL {
            assert_eq!(BackendKind::parse(k.name()), Some(k));
        }
        assert_eq!(
            BackendKind::parse("shared_log"),
            Some(BackendKind::SharedLog)
        );
        assert_eq!(BackendKind::parse("bogus"), None);
    }

    #[test]
    fn fanout_durability_equals_publication() {
        let mut b = BinlogFanout::new(BackendKind::Statement);
        b.publish(&[ev(0), ev(1)]);
        assert_eq!(b.durable_upto(), Lsn(2));
        assert_eq!(b.tail_from(Lsn(1)).len(), 1);
        assert_eq!(b.recovery_lsn(), Lsn(0), "nothing survives the master");
    }

    #[test]
    fn shared_log_tail_stops_at_durable_prefix() {
        let mut b = SharedLogBackend::new(LogStoreConfig::default());
        b.publish(&[ev(0), ev(1)]);
        assert_eq!(b.durable_upto(), Lsn(2), "all replicas acked");
        // Two replicas down: quorum unreachable, new publishes stay
        // non-durable and invisible to tailing replicas.
        b.log_mut().crash_replica(1);
        b.log_mut().crash_replica(2);
        b.publish(&[ev(2)]);
        assert_eq!(b.published_upto(), Lsn(3));
        assert_eq!(b.durable_upto(), Lsn(2));
        assert_eq!(b.tail_from(Lsn(0)).len(), 2, "tail excludes unacked suffix");
        // One heals: quorum restored, the suffix becomes durable on the
        // next ack (modelled by a re-publish of nothing + explicit ack).
        b.log_mut().heal_replica(1);
        let upto = b.log().appended_upto();
        b.log_mut().ack(1, upto);
        assert_eq!(b.durable_upto(), Lsn(3));
        assert_eq!(b.recovery_lsn(), Lsn(3));
    }
}
