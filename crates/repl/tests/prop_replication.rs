//! Property test: replication is state-machine replication. For any
//! sequence of writes, after pumping, every slave's tables are identical to
//! the master's — under both binlog formats and any apply-worker count —
//! and interleaved partial pumps never break convergence.

use amdb_repl::ReplicatedDb;
use amdb_sql::{BinlogFormat, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum W {
    Insert { id: i64, v: i64 },
    Update { id: i64, v: i64 },
    Delete { id: i64 },
    Pump,
    ShipOnly,
}

fn arb_w() -> impl Strategy<Value = W> {
    prop_oneof![
        4 => (0..50i64, any::<i64>()).prop_map(|(id, v)| W::Insert { id, v }),
        3 => (0..50i64, any::<i64>()).prop_map(|(id, v)| W::Update { id, v }),
        2 => (0..50i64).prop_map(|id| W::Delete { id }),
        2 => Just(W::Pump),
        1 => Just(W::ShipOnly),
    ]
}

fn dump(db: &mut ReplicatedDb, slave: Option<usize>) -> Vec<Vec<Value>> {
    let q = "SELECT id, v FROM t ORDER BY id";
    match slave {
        None => db.execute_master(q, &[]).expect("master dump").rows,
        Some(s) => db.execute_slave(s, q, &[]).expect("slave dump").rows,
    }
}

fn run_scenario(format: BinlogFormat, ops: Vec<W>) {
    let mut db = ReplicatedDb::new(format, 2);
    db.execute_master("CREATE TABLE t (id INT PRIMARY KEY, v BIGINT)", &[])
        .expect("schema");
    db.pump().expect("schema replicates");

    for op in ops {
        match op {
            W::Insert { id, v } => {
                // Duplicate-pk inserts fail on the master and must therefore
                // log nothing; use the result to keep the model honest.
                let _ = db.execute_master(
                    "INSERT INTO t (id, v) VALUES (?, ?)",
                    &[Value::Int(id), Value::Int(v)],
                );
            }
            W::Update { id, v } => {
                db.execute_master(
                    "UPDATE t SET v = ? WHERE id = ?",
                    &[Value::Int(v), Value::Int(id)],
                )
                .expect("update never errors");
            }
            W::Delete { id } => {
                db.execute_master("DELETE FROM t WHERE id = ?", &[Value::Int(id)])
                    .expect("delete never errors");
            }
            W::Pump => {
                db.pump().expect("pump");
            }
            W::ShipOnly => db.ship(),
        }
    }
    db.pump().expect("final pump");

    let master = dump(&mut db, None);
    for s in 0..2 {
        let slave = dump(&mut db, Some(s));
        assert_eq!(master, slave, "slave {s} diverged under {format:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn statement_replication_converges(ops in prop::collection::vec(arb_w(), 0..60)) {
        run_scenario(BinlogFormat::Statement, ops);
    }

    #[test]
    fn row_replication_converges(ops in prop::collection::vec(arb_w(), 0..60)) {
        run_scenario(BinlogFormat::Row, ops);
    }

    /// The two formats must produce the same *final state* for the same
    /// deterministic write sequence (they differ only in the wire format).
    #[test]
    fn formats_agree_on_final_state(ops in prop::collection::vec(arb_w(), 0..40)) {
        let final_state = |format: BinlogFormat| {
            let mut db = ReplicatedDb::new(format, 1);
            db.execute_master("CREATE TABLE t (id INT PRIMARY KEY, v BIGINT)", &[])
                .expect("schema");
            for op in &ops {
                match op {
                    W::Insert { id, v } => {
                        let _ = db.execute_master(
                            "INSERT INTO t (id, v) VALUES (?, ?)",
                            &[Value::Int(*id), Value::Int(*v)],
                        );
                    }
                    W::Update { id, v } => {
                        db.execute_master(
                            "UPDATE t SET v = ? WHERE id = ?",
                            &[Value::Int(*v), Value::Int(*id)],
                        )
                        .expect("update");
                    }
                    W::Delete { id } => {
                        db.execute_master("DELETE FROM t WHERE id = ?", &[Value::Int(*id)])
                            .expect("delete");
                    }
                    W::Pump => {
                        db.pump().expect("pump");
                    }
                    W::ShipOnly => db.ship(),
                }
            }
            db.pump().expect("final pump");
            dump(&mut db, Some(0))
        };
        prop_assert_eq!(
            final_state(BinlogFormat::Statement),
            final_state(BinlogFormat::Row)
        );
    }

    /// The strongest equivalence: for one write sequence, the *content
    /// fingerprint* of every replica is the same u64 whether the events
    /// travelled as statements or rows, and — for rows — whether the slave
    /// applied them serially or through the dependency scheduler at any
    /// worker count. Catches divergence the `SELECT`-dump comparison could
    /// miss (extra tables, phantom rows outside `t`).
    #[test]
    fn fingerprints_agree_across_formats_and_workers(
        ops in prop::collection::vec(arb_w(), 0..50),
    ) {
        let fingerprints = |format: BinlogFormat, workers: usize| {
            let mut db = ReplicatedDb::new(format, 2);
            db.set_apply_workers(workers);
            db.execute_master("CREATE TABLE t (id INT PRIMARY KEY, v BIGINT)", &[])
                .expect("schema");
            db.pump().expect("schema replicates");
            for op in &ops {
                match op {
                    W::Insert { id, v } => {
                        let _ = db.execute_master(
                            "INSERT INTO t (id, v) VALUES (?, ?)",
                            &[Value::Int(*id), Value::Int(*v)],
                        );
                    }
                    W::Update { id, v } => {
                        db.execute_master(
                            "UPDATE t SET v = ? WHERE id = ?",
                            &[Value::Int(*v), Value::Int(*id)],
                        )
                        .expect("update");
                    }
                    W::Delete { id } => {
                        db.execute_master("DELETE FROM t WHERE id = ?", &[Value::Int(*id)])
                            .expect("delete");
                    }
                    W::Pump => {
                        db.pump().expect("pump");
                    }
                    W::ShipOnly => db.ship(),
                }
            }
            db.pump().expect("final pump");
            let m = db.master().fingerprint();
            let (s0, s1) = (db.slave(0).fingerprint(), db.slave(1).fingerprint());
            prop_assert_eq!(m, s0, "slave 0 diverged ({format:?}, {workers} workers)");
            prop_assert_eq!(m, s1, "slave 1 diverged ({format:?}, {workers} workers)");
            Ok(m)
        };
        let reference = fingerprints(BinlogFormat::Statement, 1)?;
        for workers in [1usize, 4, 8] {
            prop_assert_eq!(reference, fingerprints(BinlogFormat::Row, workers)?);
        }
    }
}
