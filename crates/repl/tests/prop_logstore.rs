//! Property test: the shared log never loses an acked write.
//!
//! For any interleaving of appends, per-replica acks, crashes, heals and
//! truncations — as long as faults stay within the quorum tolerance
//! (`replicas - quorum` replicas may be crashed or have lied about fsync at
//! any instant) — the reattach LSN a recovering master reads from the
//! surviving replicas covers every LSN that ever reached quorum. This is
//! the backbone of the tentpole's recovery guarantee: a replica crash
//! mid-append must not lose acked writes.

use amdb_repl::logstore::{LogStore, LogStoreConfig};
use amdb_sql::Lsn;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Master appends `n` records.
    Append { n: u64 },
    /// Replica `r` acks everything it has been sent so far.
    AckAll { r: usize },
    /// Replica `r` acks only a prefix (slow fsync mid-batch).
    AckPartial { r: usize, keep: u64 },
    /// Replica `r` crashes (in-flight acks lost until heal).
    Crash { r: usize },
    /// Replica `r` heals (re-syncs to at least the durable prefix).
    Heal { r: usize },
    /// Replica `r`'s disk loses its tail beyond `keep` *of its own log* —
    /// only applied while the fault budget allows it.
    Truncate { r: usize, keep: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1..5u64).prop_map(|n| Op::Append { n }),
        4 => (0..3usize).prop_map(|r| Op::AckAll { r }),
        2 => (0..3usize, 0..20u64).prop_map(|(r, keep)| Op::AckPartial { r, keep }),
        2 => (0..3usize).prop_map(|r| Op::Crash { r }),
        2 => (0..3usize).prop_map(|r| Op::Heal { r }),
        1 => (0..3usize, 0..20u64).prop_map(|(r, keep)| Op::Truncate { r, keep }),
    ]
}

/// Replay `ops` against a 3-replica / quorum-2 log, enforcing the fault
/// budget: at most `replicas - quorum = 1` replica may be "faulted" (crashed
/// or ever-truncated) at a time. Returns the high-water durable LSN and the
/// final store.
fn run(ops: Vec<Op>) -> (u64, LogStore) {
    let cfg = LogStoreConfig::default();
    let tolerance = cfg.replicas - cfg.quorum;
    let mut s = LogStore::new(cfg);
    let mut durable_hw = 0u64;
    // A truncated replica has lied about fsync: it counts against the fault
    // budget permanently (its disk is untrustworthy).
    let mut truncated = [false; 3];
    for op in ops {
        let faulted = |s: &LogStore, truncated: &[bool; 3]| {
            (0..3)
                .filter(|&r| !s.replica_alive(r) || truncated[r])
                .count()
        };
        match op {
            Op::Append { n } => {
                s.append(n);
            }
            Op::AckAll { r } => {
                s.ack(r, s.appended_upto());
            }
            Op::AckPartial { r, keep } => {
                s.ack(r, Lsn(keep.min(s.appended_upto().0)));
            }
            Op::Crash { r } => {
                let already = !s.replica_alive(r) || truncated[r];
                if already || faulted(&s, &truncated) < tolerance {
                    s.crash_replica(r);
                }
            }
            Op::Heal { r } => {
                s.heal_replica(r);
            }
            Op::Truncate { r, keep } => {
                let already = !s.replica_alive(r) || truncated[r];
                if already || faulted(&s, &truncated) < tolerance {
                    s.truncate_replica(r, Lsn(keep));
                    truncated[r] = true;
                }
            }
        }
        durable_hw = durable_hw.max(s.durable_upto().0);
        // Invariant at every step, not just the end: whenever at least one
        // replica is reachable, reattach covers the durable high-water.
        if s.alive_replicas() > 0 {
            assert!(
                s.reattach_lsn().0 >= durable_hw,
                "acked write lost: durable high-water {} > reattach {}",
                durable_hw,
                s.reattach_lsn().0
            );
        }
    }
    (durable_hw, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No interleaving within the fault budget loses a quorum-acked write.
    #[test]
    fn acked_writes_survive_any_single_fault(ops in prop::collection::vec(arb_op(), 1..60)) {
        let (durable_hw, s) = run(ops);
        prop_assert!(s.reattach_lsn().0 >= durable_hw);
        // Durability is monotone: the final durable prefix can only have
        // grown past (never shrunk below) the high-water.
        prop_assert!(s.durable_upto().0 >= durable_hw);
    }

    /// The durable prefix never runs ahead of what was appended.
    #[test]
    fn durable_never_exceeds_appended(ops in prop::collection::vec(arb_op(), 1..60)) {
        let (_, s) = run(ops);
        prop_assert!(s.durable_upto() <= s.appended_upto());
    }
}
