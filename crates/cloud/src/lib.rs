//! # amdb-cloud — virtual cloud provider (EC2 model)
//!
//! The paper runs its master and slaves in EC2 *small* instances (so
//! saturation is observed early) and the benchmark driver in a *large*
//! instance (§III-B). It highlights two provider-level phenomena:
//!
//! 1. **Instance performance variation** (§IV-A): nominally identical small
//!    instances land on heterogeneous physical hosts — the paper names an
//!    Intel Xeon E5430 2.66 GHz and an E5507 2.27 GHz — and cites Schad et
//!    al.'s 21 % coefficient of variation for small-instance CPU performance.
//!    A slow host can dominate placement effects.
//! 2. **Placement** across availability zones and regions, which drives
//!    network latency (see `amdb-net`).
//!
//! [`Provider::launch`] reproduces both: each launched instance draws a
//! physical CPU model from a weighted catalog plus residual multiplicative
//! noise, giving a calibrated speed distribution; it also gets its own
//! drifting clock and NTP client (see `amdb-clock`).

pub mod instance;
pub mod provider;

pub use instance::{CpuModel, Instance, InstanceId, InstanceType};
pub use provider::{Provider, ProviderConfig};
