//! Instance types, physical CPU models, and the launched-instance handle.

use amdb_clock::{DriftingClock, NtpClient};
use amdb_net::Zone;
use amdb_sim::FifoCpu;

/// Opaque identifier for a launched instance, unique per provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i-{:08x}", self.0)
    }
}

/// EC2-style instance size. The paper uses `Small` for all database servers
/// ("so that saturation is expected to be observed early") and `Large` for
/// the benchmark driver ("to avoid any overload on the application tier").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceType {
    /// m1.small: 1 ECU.
    Small,
    /// m1.large: 4 ECU.
    Large,
    /// m1.xlarge: 8 ECU.
    ExtraLarge,
}

impl InstanceType {
    /// Nominal compute capacity in EC2 Compute Units.
    pub fn ecu(self) -> f64 {
        match self {
            InstanceType::Small => 1.0,
            InstanceType::Large => 4.0,
            InstanceType::ExtraLarge => 8.0,
        }
    }

    /// API name.
    pub fn name(self) -> &'static str {
        match self {
            InstanceType::Small => "m1.small",
            InstanceType::Large => "m1.large",
            InstanceType::ExtraLarge => "m1.xlarge",
        }
    }
}

/// A physical host CPU model that an instance can land on.
///
/// The two named models are the ones the paper observed hosting its slaves
/// (§IV-A); the others pad the catalog so the overall small-instance speed
/// distribution reaches the reported ≈21 % CoV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuModel {
    /// Intel Xeon E5430 2.66 GHz — the paper's fast host.
    XeonE5430,
    /// Intel Xeon E5507 2.27 GHz — the paper's slow host.
    XeonE5507,
    /// Intel Xeon E5645 2.40 GHz.
    XeonE5645,
    /// AMD Opteron 2218 2.6 GHz (older generation, markedly slower per core).
    Opteron2218,
}

impl CpuModel {
    /// Relative per-ECU speed of the host model (E5430 ≡ 1.0). The E5507
    /// ratio follows the paper's clock ratio (2.27 / 2.66 ≈ 0.85).
    pub fn speed_factor(self) -> f64 {
        match self {
            CpuModel::XeonE5430 => 1.00,
            CpuModel::XeonE5507 => 0.85,
            CpuModel::XeonE5645 => 0.95,
            CpuModel::Opteron2218 => 0.62,
        }
    }

    /// Marketing name.
    pub fn name(self) -> &'static str {
        match self {
            CpuModel::XeonE5430 => "Intel Xeon E5430 2.66GHz",
            CpuModel::XeonE5507 => "Intel Xeon E5507 2.27GHz",
            CpuModel::XeonE5645 => "Intel Xeon E5645 2.40GHz",
            CpuModel::Opteron2218 => "AMD Opteron 2218 2.6GHz",
        }
    }

    /// The catalog with launch weights (share of the provider's fleet).
    pub fn catalog() -> &'static [(CpuModel, f64)] {
        &[
            (CpuModel::XeonE5430, 0.40),
            (CpuModel::XeonE5507, 0.30),
            (CpuModel::XeonE5645, 0.20),
            (CpuModel::Opteron2218, 0.10),
        ]
    }
}

/// A launched virtual machine: placement, host hardware, effective CPU,
/// local clock, and NTP client.
#[derive(Debug, Clone)]
pub struct Instance {
    id: InstanceId,
    zone: Zone,
    itype: InstanceType,
    cpu_model: CpuModel,
    /// The instance's FIFO CPU; its speed folds together ECU, host model and
    /// residual noisy-neighbour noise.
    pub cpu: FifoCpu,
    /// The instance's drifting local clock.
    pub clock: DriftingClock,
    /// The instance's NTP client (fixed path bias, per-sync noise).
    pub ntp: NtpClient,
}

impl Instance {
    pub(crate) fn new(
        id: InstanceId,
        zone: Zone,
        itype: InstanceType,
        cpu_model: CpuModel,
        cpu: FifoCpu,
        clock: DriftingClock,
        ntp: NtpClient,
    ) -> Self {
        Self {
            id,
            zone,
            itype,
            cpu_model,
            cpu,
            clock,
            ntp,
        }
    }

    /// The instance identifier.
    pub fn id(&self) -> InstanceId {
        self.id
    }

    /// Placement zone.
    pub fn zone(&self) -> Zone {
        self.zone
    }

    /// Instance size.
    pub fn instance_type(&self) -> InstanceType {
        self.itype
    }

    /// Physical host CPU model this VM landed on.
    pub fn cpu_model(&self) -> CpuModel {
        self.cpu_model
    }

    /// Effective speed factor (ECU × host model × residual noise).
    pub fn speed(&self) -> f64 {
        self.cpu.speed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecu_ordering() {
        assert!(InstanceType::Small.ecu() < InstanceType::Large.ecu());
        assert!(InstanceType::Large.ecu() < InstanceType::ExtraLarge.ecu());
    }

    #[test]
    fn e5507_slower_than_e5430_by_clock_ratio() {
        let ratio = CpuModel::XeonE5507.speed_factor() / CpuModel::XeonE5430.speed_factor();
        assert!((ratio - 2.27 / 2.66).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn catalog_weights_sum_to_one() {
        let total: f64 = CpuModel::catalog().iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn instance_id_display() {
        assert_eq!(InstanceId(255).to_string(), "i-000000ff");
    }
}
