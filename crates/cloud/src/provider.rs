//! The provider: launching instances with calibrated performance variation.

use crate::instance::{CpuModel, Instance, InstanceId, InstanceType};
use amdb_clock::{DriftingClock, NtpClient, NtpConfig};
use amdb_net::Zone;
use amdb_sim::{FifoCpu, Rng};

/// Provider-level knobs.
#[derive(Debug, Clone)]
pub struct ProviderConfig {
    /// Residual multiplicative speed noise per instance (lognormal CoV) on
    /// top of the discrete host-model mix — models noisy neighbours, steal
    /// time, cache pressure. The combination with the host catalog yields the
    /// ≈21 % small-instance CoV reported by Schad et al. and cited in §IV-A.
    pub residual_speed_cov: f64,
    /// Initial clock offset std-dev (µs) for a freshly launched instance.
    pub initial_clock_offset_sigma_us: f64,
    /// Clock frequency-error std-dev (ppm). Pairs of instances then drift
    /// apart at up to a few tens of ppm, matching Fig. 4's ≈36 ppm pair.
    pub clock_drift_sigma_ppm: f64,
    /// NTP residual model.
    pub ntp: NtpConfig,
}

impl Default for ProviderConfig {
    fn default() -> Self {
        Self {
            residual_speed_cov: 0.165,
            initial_clock_offset_sigma_us: 10_000.0,
            clock_drift_sigma_ppm: 18.0,
            ntp: NtpConfig::default(),
        }
    }
}

/// The virtual cloud provider. Launching is deterministic given the seed of
/// the RNG handed to [`Provider::new`]: the i-th launch always lands on the
/// same host model with the same residual noise, clock and NTP bias.
#[derive(Debug)]
pub struct Provider {
    cfg: ProviderConfig,
    rng: Rng,
    next_id: u32,
}

impl Provider {
    /// Create a provider with the given configuration and RNG stream.
    pub fn new(cfg: ProviderConfig, rng: Rng) -> Self {
        Self {
            cfg,
            rng,
            next_id: 0,
        }
    }

    /// Provider with default (paper-calibrated) configuration.
    pub fn with_defaults(rng: Rng) -> Self {
        Self::new(ProviderConfig::default(), rng)
    }

    /// The active configuration.
    pub fn config(&self) -> &ProviderConfig {
        &self.cfg
    }

    /// Number of instances launched so far.
    pub fn launched(&self) -> u32 {
        self.next_id
    }

    /// Launch an instance of `itype` in `zone`.
    ///
    /// Per the paper's observation (via Ristenpart et al.) that instances of
    /// one account never share a physical host, every launch draws an
    /// independent host model — so two slaves can differ by the full
    /// fast-host/slow-host gap even in the same zone.
    pub fn launch(&mut self, zone: Zone, itype: InstanceType) -> Instance {
        let id = InstanceId(self.next_id);
        self.next_id += 1;

        let catalog = CpuModel::catalog();
        let weights: Vec<f64> = catalog.iter().map(|&(_, w)| w).collect();
        let model = catalog[self.rng.pick_weighted(&weights)].0;
        let residual = if self.cfg.residual_speed_cov > 0.0 {
            self.rng
                .lognormal_mean_cov(1.0, self.cfg.residual_speed_cov)
        } else {
            1.0
        };
        let speed = itype.ecu() * model.speed_factor() * residual;

        let clock = DriftingClock::new(
            self.rng.normal(0.0, self.cfg.initial_clock_offset_sigma_us),
            self.rng.normal(0.0, self.cfg.clock_drift_sigma_ppm),
        );
        let ntp = NtpClient::sample(&self.cfg.ntp, &mut self.rng);

        Instance::new(id, zone, itype, model, FifoCpu::new(speed), clock, ntp)
    }

    /// Launch an instance pinned to a specific host CPU model (used by the
    /// §IV-A performance-variation experiment, which contrasts a slave on an
    /// E5430 host against one on an E5507 host).
    pub fn launch_on_host(&mut self, zone: Zone, itype: InstanceType, model: CpuModel) -> Instance {
        let id = InstanceId(self.next_id);
        self.next_id += 1;
        let clock = DriftingClock::new(
            self.rng.normal(0.0, self.cfg.initial_clock_offset_sigma_us),
            self.rng.normal(0.0, self.cfg.clock_drift_sigma_ppm),
        );
        let ntp = NtpClient::sample(&self.cfg.ntp, &mut self.rng);
        Instance::new(
            id,
            zone,
            itype,
            model,
            FifoCpu::new(itype.ecu() * model.speed_factor()),
            clock,
            ntp,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdb_net::Region;

    fn zone() -> Zone {
        Zone::new(Region::UsEast1, 'a')
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let mut p = Provider::with_defaults(Rng::new(1));
        let a = p.launch(zone(), InstanceType::Small);
        let b = p.launch(zone(), InstanceType::Small);
        assert_ne!(a.id(), b.id());
        assert_eq!(p.launched(), 2);
    }

    #[test]
    fn deterministic_fleet_for_seed() {
        let mut p1 = Provider::with_defaults(Rng::new(42));
        let mut p2 = Provider::with_defaults(Rng::new(42));
        for _ in 0..20 {
            let a = p1.launch(zone(), InstanceType::Small);
            let b = p2.launch(zone(), InstanceType::Small);
            assert_eq!(a.speed(), b.speed());
            assert_eq!(a.cpu_model(), b.cpu_model());
        }
    }

    #[test]
    fn small_instance_speed_cov_matches_schad_et_al() {
        // §IV-A cites a 21 % coefficient of variation for small instances.
        let mut p = Provider::with_defaults(Rng::new(7));
        let speeds: Vec<f64> = (0..4000)
            .map(|_| p.launch(zone(), InstanceType::Small).speed())
            .collect();
        let mean = speeds.iter().sum::<f64>() / speeds.len() as f64;
        let var =
            speeds.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (speeds.len() - 1) as f64;
        let cov = var.sqrt() / mean;
        assert!(
            (cov - 0.21).abs() < 0.04,
            "fleet CoV {cov:.3} should be near 0.21"
        );
    }

    #[test]
    fn large_instances_are_faster() {
        let mut p = Provider::with_defaults(Rng::new(3));
        let avg = |p: &mut Provider, t: InstanceType| -> f64 {
            (0..500).map(|_| p.launch(zone(), t).speed()).sum::<f64>() / 500.0
        };
        let small = avg(&mut p, InstanceType::Small);
        let large = avg(&mut p, InstanceType::Large);
        assert!(
            large / small > 3.0,
            "large ({large:.2}) ≈ 4× small ({small:.2})"
        );
    }

    #[test]
    fn pinned_host_has_exact_speed() {
        let mut p = Provider::with_defaults(Rng::new(4));
        let fast = p.launch_on_host(zone(), InstanceType::Small, CpuModel::XeonE5430);
        let slow = p.launch_on_host(zone(), InstanceType::Small, CpuModel::XeonE5507);
        assert_eq!(fast.speed(), 1.0);
        assert_eq!(slow.speed(), 0.85);
    }

    #[test]
    fn launches_carry_distinct_clocks() {
        let mut p = Provider::with_defaults(Rng::new(5));
        let a = p.launch(zone(), InstanceType::Small);
        let b = p.launch(zone(), InstanceType::Small);
        assert_ne!(
            a.clock.drift_ppm(),
            b.clock.drift_ppm(),
            "clock parameters are per-instance"
        );
        assert_ne!(a.ntp.bias_us(), b.ntp.bias_us());
    }
}
