//! # amdb-sim — deterministic discrete-event simulation kernel
//!
//! The reproduction replaces the paper's physical testbed (Amazon EC2 VMs,
//! 35-minute wall-clock runs) with a deterministic discrete-event simulation:
//! virtual time advances from event to event, so a full 35-minute Cloudstone
//! run completes in milliseconds of host time and every experiment is exactly
//! reproducible from its seed.
//!
//! The kernel is deliberately small and generic:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time
//!   newtypes (MySQL's second-resolution `NOW()` forced the paper's authors to
//!   write a microsecond UDF, §III-A, so the kernel resolution matches it).
//! * [`Sim`] — an agenda of `(time, seq, FnOnce)` events over a caller-owned
//!   world `W`. Components live inside `W`; events are closures that mutate
//!   `W` and schedule follow-up events.
//! * [`FifoCpu`] — a non-preemptive FIFO single-server CPU model; database
//!   service times, saturation and queueing delay all emerge from it.
//! * [`rng`] — a self-contained, seedable PRNG with the distributions the
//!   experiments need (uniform, exponential, normal, lognormal). We ship our
//!   own generator rather than depending on `rand` so that every figure is
//!   bit-reproducible regardless of upstream crate changes.

pub mod kernel;
pub mod resource;
pub mod rng;
pub mod time;

pub use kernel::{BoxedEvent, Event, EventFn, Sim};
pub use resource::FifoCpu;
pub use rng::Rng;
pub use time::{SimDuration, SimTime};
