//! Self-contained deterministic PRNG and the distributions the experiments
//! draw from.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a well-studied,
//! fast, portable combination. Each experiment derives independent named
//! streams from one master seed so that, e.g., network jitter draws never
//! perturb workload arrival draws when a parameter changes (common random
//! numbers across configurations, which sharpens the figure comparisons).

/// xoshiro256++ PRNG with SplitMix64 seeding and distribution helpers.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second normal variate from the Box-Muller pair.
    spare_normal: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed a generator. Any seed (including 0) is valid: seeds pass through
    /// SplitMix64 so the xoshiro state is never all-zero.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            spare_normal: None,
        }
    }

    /// Derive an independent named stream. The label keeps stream derivation
    /// self-documenting and stable across refactors ("net-jitter",
    /// "think-time", ...).
    pub fn derive(&self, label: &str) -> Rng {
        // Absorb the label through SplitMix64 rounds — one full finalizer
        // per byte plus a length-separated closing round — then mix with
        // fresh output from a clone so the parent's state is not consumed.
        // (The previous FNV-1a ^ probe construction handed any two labels
        // with colliding 64-bit FNV hashes identical child streams; the
        // per-byte avalanche leaves no such structural collisions.)
        let mut h: u64 = 0x243F_6A88_85A3_08D3; // π fraction bits, arbitrary
        for b in label.bytes() {
            h ^= b as u64;
            h = splitmix64(&mut h);
        }
        h ^= label.len() as u64;
        let h = splitmix64(&mut h);
        let mut probe = self.clone();
        Rng::new(h ^ probe.next_u64())
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53-bit precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift rejection.
    /// `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // Unbiased: rejection-sample the low range.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty int_range");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential variate with the given mean (inverse-CDF method).
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - f64() is in (0, 1], so ln() is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal via Box-Muller (pairs cached).
    pub fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
        self.spare_normal = Some(r * s);
        r * c
    }

    /// Normal variate with mean `mu` and standard deviation `sigma`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.std_normal()
    }

    /// Lognormal variate parameterized by the *underlying* normal's mu/sigma.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Lognormal variate parameterized by its own mean and coefficient of
    /// variation — convenient for "multiplier around 1.0 with CoV c" noise
    /// (the paper's instance-performance variation, CoV ≈ 21 %).
    pub fn lognormal_mean_cov(&mut self, mean: f64, cov: f64) -> f64 {
        debug_assert!(mean > 0.0 && cov >= 0.0);
        if cov == 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cov * cov).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        self.lognormal(mu, sigma2.sqrt())
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "Rng::pick on empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Weighted choice: returns an index with probability proportional to
    /// `weights[i]`. Weights must be non-negative with a positive sum.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "pick_weighted needs positive total weight");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0);
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1 // FP slack lands on the last positive-weight entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derived_streams_are_independent_and_stable() {
        let root = Rng::new(7);
        let mut x1 = root.derive("net");
        let mut x2 = root.derive("net");
        let mut y = root.derive("workload");
        assert_eq!(x1.next_u64(), x2.next_u64(), "same label, same stream");
        assert_ne!(x1.next_u64(), y.next_u64());
        // Pinned first outputs of the SplitMix64-absorption derivation: any
        // change to the constants or rounds must update these on purpose.
        assert_eq!(Rng::new(7).derive("net").next_u64(), 0x5A8A_5B28_9916_9B8B);
        assert_eq!(
            Rng::new(42).derive("load").next_u64(),
            0xB79B_C515_0D1C_F82A
        );
    }

    /// The old FNV-1a ^ probe derivation gave structurally related streams
    /// to labels with colliding 64-bit FNV hashes. True collisions are hard
    /// to exhibit, so approximate the property: a large family of related
    /// labels must produce all-distinct child streams.
    #[test]
    fn derive_labels_yield_distinct_streams() {
        let root = Rng::new(0);
        let mut firsts = std::collections::BTreeSet::new();
        for i in 0..2_000u32 {
            for label in [format!("s{i}"), format!("s-{i}"), format!("{i}s")] {
                firsts.insert(root.derive(&label).next_u64());
            }
        }
        assert_eq!(firsts.len(), 6_000, "no colliding child streams");
    }

    /// Byte-level absorption: labels that differ only by a trailing NUL (an
    /// XOR-absorbed zero byte) still diverge, because every byte runs the
    /// full finalizer round.
    #[test]
    fn derive_trailing_nul_labels_diverge() {
        let root = Rng::new(3);
        let mut a = root.derive("load");
        let mut b = root.derive("load\0");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_bounds_and_coverage() {
        let mut r = Rng::new(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn int_range_inclusive() {
        let mut r = Rng::new(5);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2_000 {
            let v = r.int_range(-2, 2);
            assert!((-2..=2).contains(&v));
            lo_seen |= v == -2;
            hi_seen |= v == 2;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn exp_mean_close() {
        let mut r = Rng::new(6);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "got {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = Rng::new(8);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn lognormal_mean_cov_moments() {
        let mut r = Rng::new(9);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.lognormal_mean_cov(1.0, 0.21)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let cov = var.sqrt() / mean;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((cov - 0.21).abs() < 0.01, "cov {cov}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pick_weighted_respects_zero_weight() {
        let mut r = Rng::new(10);
        for _ in 0..1_000 {
            let i = r.pick_weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn pick_weighted_rough_proportions() {
        let mut r = Rng::new(11);
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            counts[r.pick_weighted(&[1.0, 3.0])] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(12);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
