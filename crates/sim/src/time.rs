//! Microsecond-resolution virtual time newtypes.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, measured in microseconds since the start of
/// the simulation. The experiment clock substrate maps this "true time" to
/// per-VM local clocks (which drift; see `amdb-clock`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in microseconds. Durations are non-negative by
/// construction; signed arithmetic on timestamps is done in `i64` by callers
/// that need it (e.g. clock-offset math).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since origin as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Milliseconds since origin as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration since an earlier instant; saturates to zero if `earlier` is
    /// actually later (caller bug guarded in release builds).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self >= earlier, "SimTime::since called with later instant");
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from float seconds, rounding to the nearest microsecond and
    /// saturating negative inputs to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Construct from float milliseconds (rounds; negative saturates to 0).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e3).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Float seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Float milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True for the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a float factor (used to divide CPU demand by machine speed).
    /// Negative or NaN factors are programmer errors and panic in debug.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k.is_finite() && k >= 0.0, "invalid duration scale {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_millis_f64(0.25).as_micros(), 250);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - SimTime::from_secs(1)).as_millis_f64(), 500.0);
        let d = SimDuration::from_millis(100) * 3;
        assert_eq!(d.as_millis_f64(), 300.0);
        assert_eq!((d / 2).as_millis_f64(), 150.0);
    }

    #[test]
    fn duration_saturating_sub() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a - b, SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(100).mul_f64(1.5);
        assert_eq!(d.as_micros(), 150);
        let e = SimDuration::from_micros(3).mul_f64(1.0 / 3.0);
        assert_eq!(e.as_micros(), 1);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }
}
