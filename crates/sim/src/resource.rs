//! Non-preemptive FIFO single-server CPU model.
//!
//! Every virtual machine in the cloud substrate owns one [`FifoCpu`]. Work is
//! submitted as a CPU *demand* (the time the job would take on a speed-1.0
//! reference core); the server scales it by the instance's speed factor and
//! serves jobs in arrival order. Because completion times are fully
//! determined at submission for a FIFO non-preemptive queue, `submit` simply
//! *returns* the completion instant and the caller schedules its own
//! completion event — no callback plumbing required.
//!
//! Saturation behaviour — the paper's central observation ("the observed
//! saturation point … appearing in slaves at the beginning, moves along with
//! an increasing workload … eventually the saturation will transit from
//! slaves to the master", §IV-A) — emerges directly from this queue: once
//! offered demand exceeds capacity, the backlog and thus response times grow
//! without bound.

use crate::time::{SimDuration, SimTime};

/// A FIFO, non-preemptive, single-server queue with a speed factor.
#[derive(Debug, Clone)]
pub struct FifoCpu {
    speed: f64,
    busy_until: SimTime,
    busy_accum: SimDuration,
    window_start: SimTime,
    jobs: u64,
}

impl FifoCpu {
    /// Create a CPU with the given speed factor (reference core = 1.0).
    ///
    /// # Panics
    /// Panics on non-positive or non-finite speeds.
    pub fn new(speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "invalid CPU speed {speed}"
        );
        Self {
            speed,
            busy_until: SimTime::ZERO,
            busy_accum: SimDuration::ZERO,
            window_start: SimTime::ZERO,
            jobs: 0,
        }
    }

    /// The speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Submit a job of `demand` reference-CPU time at instant `now`; returns
    /// when the job will complete. Jobs are served in submission order.
    pub fn submit(&mut self, now: SimTime, demand: SimDuration) -> SimTime {
        let service = demand.mul_f64(1.0 / self.speed);
        let start = self.busy_until.max(now);
        self.busy_until = start + service;
        self.busy_accum += service;
        self.jobs += 1;
        self.busy_until
    }

    /// Instant at which the server drains, given no further arrivals.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Backlog: how much queued-plus-in-service time remains at `now`.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        if self.busy_until > now {
            self.busy_until - now
        } else {
            SimDuration::ZERO
        }
    }

    /// True if a job submitted at `now` would have to wait.
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.busy_until > now
    }

    /// Jobs submitted since construction (or the last [`Self::reset_window`]).
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over the accounting window ending at `now`: served time /
    /// wall time. May exceed 1.0 while a backlog is still queued (offered
    /// load above capacity) — exactly the saturated-master signature.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let wall = now - self.window_start;
        if wall.is_zero() {
            return 0.0;
        }
        self.busy_accum.as_secs_f64() / wall.as_secs_f64()
    }

    /// Cumulative service time accepted in the current accounting window.
    /// Monotone between [`Self::reset_window`] calls, so interval samplers
    /// can difference successive readings to get per-tick busy time.
    pub fn busy_in_window(&self) -> SimDuration {
        self.busy_accum
    }

    /// Start a fresh accounting window at `now` (e.g. at the beginning of the
    /// measured steady stage). The queue itself is untouched.
    pub fn reset_window(&mut self, now: SimTime) {
        self.window_start = now;
        self.busy_accum = SimDuration::ZERO;
        self.jobs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000;

    #[test]
    fn idle_server_serves_immediately() {
        let mut cpu = FifoCpu::new(1.0);
        let done = cpu.submit(SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(done, SimTime::from_millis(15));
    }

    #[test]
    fn jobs_queue_fifo() {
        let mut cpu = FifoCpu::new(1.0);
        let t0 = SimTime::ZERO;
        let d1 = cpu.submit(t0, SimDuration::from_millis(10));
        let d2 = cpu.submit(t0, SimDuration::from_millis(10));
        assert_eq!(d1, SimTime::from_millis(10));
        assert_eq!(d2, SimTime::from_millis(20), "second job waits");
    }

    #[test]
    fn speed_scales_service_time() {
        let mut fast = FifoCpu::new(2.0);
        let done = fast.submit(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(done, SimTime::from_millis(5));
        let mut slow = FifoCpu::new(0.5);
        let done = slow.submit(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(done, SimTime::from_millis(20));
    }

    #[test]
    fn backlog_and_busy() {
        let mut cpu = FifoCpu::new(1.0);
        cpu.submit(SimTime::ZERO, SimDuration::from_millis(10));
        assert!(cpu.is_busy(SimTime::from_millis(5)));
        assert_eq!(
            cpu.backlog(SimTime::from_millis(4)),
            SimDuration::from_micros(6 * MS)
        );
        assert!(!cpu.is_busy(SimTime::from_millis(10)));
        assert_eq!(cpu.backlog(SimTime::from_millis(12)), SimDuration::ZERO);
    }

    #[test]
    fn gap_between_jobs_leaves_server_idle() {
        let mut cpu = FifoCpu::new(1.0);
        cpu.submit(SimTime::ZERO, SimDuration::from_millis(1));
        let done = cpu.submit(SimTime::from_millis(100), SimDuration::from_millis(1));
        assert_eq!(done, SimTime::from_millis(101), "no phantom queueing");
    }

    #[test]
    fn utilization_accounting() {
        let mut cpu = FifoCpu::new(1.0);
        cpu.submit(SimTime::ZERO, SimDuration::from_millis(250));
        let u = cpu.utilization(SimTime::from_millis(1000));
        assert!((u - 0.25).abs() < 1e-9, "{u}");
        // Saturated: 2s of demand in a 1s window reads as 2.0.
        cpu.reset_window(SimTime::from_secs(1));
        cpu.submit(SimTime::from_secs(1), SimDuration::from_secs(2));
        let u = cpu.utilization(SimTime::from_secs(2));
        assert!((u - 2.0).abs() < 1e-9, "{u}");
    }

    #[test]
    fn window_reset_clears_accum_not_queue() {
        let mut cpu = FifoCpu::new(1.0);
        cpu.submit(SimTime::ZERO, SimDuration::from_secs(10));
        cpu.reset_window(SimTime::from_secs(1));
        assert_eq!(cpu.jobs(), 0);
        assert!(cpu.is_busy(SimTime::from_secs(5)), "backlog survives reset");
    }

    #[test]
    #[should_panic]
    fn zero_speed_rejected() {
        let _ = FifoCpu::new(0.0);
    }
}
