//! The event loop: a time-ordered agenda of closures over a world `W`.

use crate::time::{SimDuration, SimTime};
use std::collections::BinaryHeap;

/// An event: a one-shot closure receiving the world and the kernel (so it can
/// schedule follow-ups).
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

// Order by (time, seq); the heap is a max-heap so invert the comparison.
impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: earliest (at, seq) is the heap maximum.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Discrete-event simulation kernel.
///
/// The kernel owns *only* the agenda and the clock; all domain state lives in
/// the caller's world `W`. Events at the same instant run in scheduling order
/// (FIFO tie-break via a monotonically increasing sequence number), which
/// keeps runs deterministic.
///
/// ```
/// use amdb_sim::{Sim, SimDuration, SimTime};
///
/// struct World { ticks: u32 }
/// let mut sim = Sim::new();
/// let mut world = World { ticks: 0 };
/// sim.schedule_in(SimDuration::from_secs(1), |w: &mut World, sim| {
///     w.ticks += 1;
///     assert_eq!(sim.now(), SimTime::from_secs(1));
/// });
/// sim.run(&mut world);
/// assert_eq!(world.ticks, 1);
/// ```
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    agenda: BinaryHeap<Scheduled<W>>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// A kernel at time zero with an empty agenda.
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            agenda: BinaryHeap::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.agenda.len()
    }

    /// Schedule an event at an absolute instant.
    ///
    /// # Panics
    /// Panics when `at` is in the past — scheduling into the past would make
    /// the run order undefined.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.agenda.push(Scheduled {
            at,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule an event after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) {
        self.schedule_at(self.now + delay, f);
    }

    /// Run one event if any is pending; returns whether one ran.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.agenda.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now);
                self.now = ev.at;
                self.executed += 1;
                (ev.f)(world, self);
                true
            }
            None => false,
        }
    }

    /// Run until the agenda is empty.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run events with timestamps `<= end`, then set the clock to `end`.
    /// Events scheduled beyond `end` remain pending.
    pub fn run_until(&mut self, world: &mut W, end: SimTime) {
        loop {
            match self.agenda.peek() {
                Some(ev) if ev.at <= end => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if end > self.now {
            self.now = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct W {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_secs(2), |w: &mut W, s| {
            w.log.push((s.now().as_micros(), "b"))
        });
        sim.schedule_at(SimTime::from_secs(1), |w: &mut W, s| {
            w.log.push((s.now().as_micros(), "a"))
        });
        sim.run(&mut w);
        assert_eq!(
            w.log,
            vec![(1_000_000, "a"), (2_000_000, "b")],
            "time order respected"
        );
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    fn same_time_fifo_order() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        for name in ["first", "second", "third"] {
            sim.schedule_at(SimTime::from_secs(1), move |w: &mut W, _| {
                w.log.push((0, name))
            });
        }
        sim.run(&mut w);
        let names: Vec<_> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        sim.schedule_in(SimDuration::from_secs(1), |_: &mut W, s| {
            s.schedule_in(SimDuration::from_secs(1), |w: &mut W, s| {
                w.log.push((s.now().as_micros(), "nested"));
            });
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(2_000_000, "nested")]);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_secs(1), |w: &mut W, _| w.log.push((0, "in")));
        sim.schedule_at(SimTime::from_secs(10), |w: &mut W, _| {
            w.log.push((0, "out"))
        });
        sim.run_until(&mut w, SimTime::from_secs(5));
        assert_eq!(w.log.len(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.pending(), 1);
        sim.run(&mut w);
        assert_eq!(w.log.len(), 2);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_secs(1), |_: &mut W, s| {
            s.schedule_at(SimTime::ZERO, |_, _| {});
        });
        sim.run(&mut w);
    }

    #[test]
    fn step_on_empty_returns_false() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        assert!(!sim.step(&mut w));
    }

    #[test]
    fn heavy_interleaving_is_deterministic() {
        // Two identical runs produce identical logs.
        fn run_once() -> Vec<(u64, &'static str)> {
            let mut sim: Sim<W> = Sim::new();
            let mut w = W::default();
            for i in 0..100u64 {
                let at = SimTime::from_micros((i * 37) % 500);
                sim.schedule_at(at, move |w: &mut W, s| {
                    w.log.push((s.now().as_micros(), "e"));
                    if s.now() < SimTime::from_micros(400) {
                        s.schedule_in(SimDuration::from_micros(13), |w: &mut W, s| {
                            w.log.push((s.now().as_micros(), "n"));
                        });
                    }
                });
            }
            sim.run(&mut w);
            w.log
        }
        assert_eq!(run_once(), run_once());
    }
}
