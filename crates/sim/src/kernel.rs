//! The event loop: a time-ordered agenda of typed events over a world `W`.
//!
//! The agenda is a slab of pending events indexed by a 4-ary implicit
//! min-heap of packed `(time, seq)` keys, plus a same-instant batch buffer.
//! Compared to the original `BinaryHeap<Box<dyn FnOnce>>` agenda this
//! executes the identical event order (the keys are the same) while keeping
//! the schedule→pop→execute cycle allocation-free for typed events: slab
//! slots and heap entries are recycled, and events scheduled *at* the
//! current instant while a batch is draining append to the batch directly
//! without touching the heap at all.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::marker::PhantomData;

/// A typed simulation event: fired once with the world and the kernel (so it
/// can schedule follow-ups). World crates define an `enum` of their hot
/// events and keep a boxed-closure variant as the escape hatch for cold
/// paths; [`BoxedEvent`] is the degenerate "everything is a closure" case
/// that preserves the original kernel API.
pub trait Event<W>: Sized {
    /// Execute the event.
    fn fire(self, world: &mut W, sim: &mut Sim<W, Self>);
}

/// An event closure: the escape hatch payload (and the default event type).
pub type EventFn<W, E = BoxedEvent<W>> = Box<dyn FnOnce(&mut W, &mut Sim<W, E>)>;

/// The default event type: a boxed one-shot closure, exactly the original
/// kernel's representation.
pub struct BoxedEvent<W>(pub EventFn<W>);

impl<W> Event<W> for BoxedEvent<W> {
    fn fire(self, world: &mut W, sim: &mut Sim<W, Self>) {
        (self.0)(world, sim)
    }
}

impl<W> From<EventFn<W>> for BoxedEvent<W> {
    fn from(f: EventFn<W>) -> Self {
        BoxedEvent(f)
    }
}

/// Heap key: `(time, seq)` packed so one `u128` compare orders the agenda.
/// `seq` is monotone per kernel, which makes same-instant ordering FIFO.
#[inline]
fn pack(at: SimTime, seq: u64) -> u128 {
    ((at.as_micros() as u128) << 64) | seq as u128
}

#[inline]
fn key_time(key: u128) -> u64 {
    (key >> 64) as u64
}

/// Discrete-event simulation kernel.
///
/// The kernel owns *only* the agenda and the clock; all domain state lives in
/// the caller's world `W`. Events at the same instant run in scheduling order
/// (FIFO tie-break via a monotonically increasing sequence number), which
/// keeps runs deterministic.
///
/// ```
/// use amdb_sim::{Sim, SimDuration, SimTime};
///
/// struct World { ticks: u32 }
/// let mut sim: Sim<World> = Sim::new();
/// let mut world = World { ticks: 0 };
/// sim.schedule_in(SimDuration::from_secs(1), |w: &mut World, sim| {
///     w.ticks += 1;
///     assert_eq!(sim.now(), SimTime::from_secs(1));
/// });
/// sim.run(&mut world);
/// assert_eq!(world.ticks, 1);
/// ```
pub struct Sim<W, E = BoxedEvent<W>> {
    now: SimTime,
    seq: u64,
    executed: u64,
    /// 4-ary implicit min-heap of `(packed key, slab slot)`. Entries are two
    /// machine words, so sifts move no event payloads.
    heap: Vec<(u128, u32)>,
    /// Event payloads, addressed by heap entries. `None` slots are free.
    slab: Vec<Option<E>>,
    /// Free slab slots, reused LIFO.
    free: Vec<u32>,
    /// Events at the *current* instant, drained front-to-back. Filling it
    /// pops the heap in `(at, seq)` order, and any event scheduled at the
    /// current instant while the batch is non-empty has a larger `seq` than
    /// everything in it — so appending preserves the exact global order the
    /// heap alone would have produced, minus the heap traffic.
    batch: VecDeque<E>,
    _world: PhantomData<fn(&mut W)>,
}

impl<W, E: Event<W>> Default for Sim<W, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W, E: Event<W>> Sim<W, E> {
    /// A kernel at time zero with an empty agenda.
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            heap: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            batch: VecDeque::new(),
            _world: PhantomData,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.heap.len() + self.batch.len()
    }

    /// Schedule a typed event at an absolute instant.
    ///
    /// # Panics
    /// Panics when `at` is in the past — scheduling into the past would make
    /// the run order undefined.
    pub fn schedule_event_at(&mut self, at: SimTime, ev: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        if at == self.now && !self.batch.is_empty() {
            // Same-instant fast path: the batch already holds every pending
            // event at `now` in seq order, all with smaller seqs.
            self.batch.push_back(ev);
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(ev);
                s
            }
            None => {
                self.slab.push(Some(ev));
                (self.slab.len() - 1) as u32
            }
        };
        self.heap.push((pack(at, seq), slot));
        self.sift_up(self.heap.len() - 1);
    }

    /// Schedule a typed event after a relative delay.
    pub fn schedule_event_in(&mut self, delay: SimDuration, ev: E) {
        self.schedule_event_at(self.now + delay, ev);
    }

    /// Run one event if any is pending; returns whether one ran.
    pub fn step(&mut self, world: &mut W) -> bool {
        let ev = match self.batch.pop_front() {
            Some(ev) => ev,
            None => {
                let Some((at, ev)) = self.pop_min() else {
                    return false;
                };
                debug_assert!(at >= self.now);
                self.now = at;
                // Move every other event at this instant into the batch;
                // they pop in seq order, so the batch is FIFO-correct.
                while let Some(&(key, _)) = self.heap.first() {
                    if key_time(key) != at.as_micros() {
                        break;
                    }
                    let (_, e) = self.pop_min().expect("peeked entry");
                    self.batch.push_back(e);
                }
                ev
            }
        };
        self.executed += 1;
        ev.fire(world, self);
        true
    }

    /// Run until the agenda is empty.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run events with timestamps `<= end`, then set the clock to `end`.
    /// Events scheduled beyond `end` remain pending.
    pub fn run_until(&mut self, world: &mut W, end: SimTime) {
        loop {
            match self.next_at() {
                Some(at) if at <= end => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if end > self.now {
            self.now = end;
        }
    }

    /// Instant of the next pending event, if any.
    fn next_at(&self) -> Option<SimTime> {
        if !self.batch.is_empty() {
            return Some(self.now);
        }
        self.heap
            .first()
            .map(|&(key, _)| SimTime::from_micros(key_time(key)))
    }

    fn pop_min(&mut self) -> Option<(SimTime, E)> {
        let &(key, slot) = self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let ev = self.slab[slot as usize].take().expect("live slot");
        self.free.push(slot);
        Some((SimTime::from_micros(key_time(key)), ev))
    }

    fn sift_up(&mut self, mut i: usize) {
        let item = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.heap[parent].0 <= item.0 {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = item;
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let item = self.heap[i];
        loop {
            let first = i * 4 + 1;
            if first >= len {
                break;
            }
            let mut best = first;
            let mut best_key = self.heap[first].0;
            for c in first + 1..(first + 4).min(len) {
                if self.heap[c].0 < best_key {
                    best = c;
                    best_key = self.heap[c].0;
                }
            }
            if item.0 <= best_key {
                break;
            }
            self.heap[i] = self.heap[best];
            i = best;
        }
        self.heap[i] = item;
    }
}

/// Closure scheduling: available whenever the event type has a boxed-closure
/// escape hatch (the default [`BoxedEvent`], or a world enum with a
/// `From<Box<dyn FnOnce..>>` closure variant). This keeps the original
/// closure API source-compatible for every caller.
impl<W, E> Sim<W, E>
where
    E: Event<W> + From<Box<dyn FnOnce(&mut W, &mut Sim<W, E>)>>,
{
    /// Schedule a closure event at an absolute instant.
    ///
    /// # Panics
    /// Panics when `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Sim<W, E>) + 'static) {
        let boxed: EventFn<W, E> = Box::new(f);
        self.schedule_event_at(at, E::from(boxed));
    }

    /// Schedule a closure event after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Sim<W, E>) + 'static,
    ) {
        self.schedule_at(self.now + delay, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct W {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_secs(2), |w: &mut W, s| {
            w.log.push((s.now().as_micros(), "b"))
        });
        sim.schedule_at(SimTime::from_secs(1), |w: &mut W, s| {
            w.log.push((s.now().as_micros(), "a"))
        });
        sim.run(&mut w);
        assert_eq!(
            w.log,
            vec![(1_000_000, "a"), (2_000_000, "b")],
            "time order respected"
        );
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    fn same_time_fifo_order() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        for name in ["first", "second", "third"] {
            sim.schedule_at(SimTime::from_secs(1), move |w: &mut W, _| {
                w.log.push((0, name))
            });
        }
        sim.run(&mut w);
        let names: Vec<_> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        sim.schedule_in(SimDuration::from_secs(1), |_: &mut W, s| {
            s.schedule_in(SimDuration::from_secs(1), |w: &mut W, s| {
                w.log.push((s.now().as_micros(), "nested"));
            });
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(2_000_000, "nested")]);
    }

    #[test]
    fn same_instant_scheduling_appends_to_batch() {
        // Three events at t=1; the first schedules a fourth *at* t=1 while
        // the batch holds the other two — it must run last, after them.
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_secs(1), |w: &mut W, s| {
            w.log.push((0, "a"));
            s.schedule_at(SimTime::from_secs(1), |w: &mut W, _| {
                w.log.push((0, "late"));
            });
        });
        sim.schedule_at(SimTime::from_secs(1), |w: &mut W, _| w.log.push((0, "b")));
        sim.schedule_at(SimTime::from_secs(1), |w: &mut W, _| w.log.push((0, "c")));
        sim.run(&mut w);
        let names: Vec<_> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c", "late"]);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_secs(1), |w: &mut W, _| w.log.push((0, "in")));
        sim.schedule_at(SimTime::from_secs(10), |w: &mut W, _| {
            w.log.push((0, "out"))
        });
        sim.run_until(&mut w, SimTime::from_secs(5));
        assert_eq!(w.log.len(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.pending(), 1);
        sim.run(&mut w);
        assert_eq!(w.log.len(), 2);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_secs(1), |_: &mut W, s| {
            s.schedule_at(SimTime::ZERO, |_, _| {});
        });
        sim.run(&mut w);
    }

    #[test]
    fn step_on_empty_returns_false() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        assert!(!sim.step(&mut w));
    }

    #[test]
    fn typed_events_fire_without_boxing() {
        enum Tick {
            Once(&'static str),
            Chain(u32),
        }
        #[derive(Default)]
        struct Counter {
            fired: Vec<String>,
        }
        impl Event<Counter> for Tick {
            fn fire(self, w: &mut Counter, sim: &mut Sim<Counter, Tick>) {
                match self {
                    Tick::Once(name) => w.fired.push(name.to_string()),
                    Tick::Chain(n) => {
                        w.fired.push(format!("chain{n}"));
                        if n > 0 {
                            sim.schedule_event_in(SimDuration::from_micros(10), Tick::Chain(n - 1));
                        }
                    }
                }
            }
        }
        let mut sim: Sim<Counter, Tick> = Sim::new();
        let mut w = Counter::default();
        sim.schedule_event_at(SimTime::from_micros(5), Tick::Once("a"));
        sim.schedule_event_at(SimTime::from_micros(1), Tick::Chain(2));
        sim.run(&mut w);
        assert_eq!(w.fired, vec!["chain2", "a", "chain1", "chain0"]);
        assert_eq!(sim.events_executed(), 4);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut sim: Sim<W> = Sim::new();
        let mut w = W::default();
        for round in 0..100u64 {
            sim.schedule_at(SimTime::from_micros(round + 1), |w: &mut W, _| {
                w.log.push((0, "e"))
            });
            sim.step(&mut w);
        }
        assert!(
            sim.slab.len() <= 2,
            "slab grew to {} slots for a 1-deep agenda",
            sim.slab.len()
        );
    }

    #[test]
    fn heavy_interleaving_is_deterministic() {
        // Two identical runs produce identical logs.
        fn run_once() -> Vec<(u64, &'static str)> {
            let mut sim: Sim<W> = Sim::new();
            let mut w = W::default();
            for i in 0..100u64 {
                let at = SimTime::from_micros((i * 37) % 500);
                sim.schedule_at(at, move |w: &mut W, s| {
                    w.log.push((s.now().as_micros(), "e"));
                    if s.now() < SimTime::from_micros(400) {
                        s.schedule_in(SimDuration::from_micros(13), |w: &mut W, s| {
                            w.log.push((s.now().as_micros(), "n"));
                        });
                    }
                });
            }
            sim.run(&mut w);
            w.log
        }
        assert_eq!(run_once(), run_once());
    }
}
