//! Property tests for the DES kernel, CPU model, and RNG.

use amdb_sim::{FifoCpu, Rng, Sim, SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events always fire in non-decreasing timestamp order, whatever the
    /// scheduling order was.
    #[test]
    fn events_fire_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        struct W { fired: Vec<u64> }
        let mut sim: Sim<W> = Sim::new();
        let mut w = W { fired: Vec::new() };
        for &t in &times {
            sim.schedule_at(SimTime::from_micros(t), move |w: &mut W, s| {
                w.fired.push(s.now().as_micros());
            });
        }
        sim.run(&mut w);
        prop_assert_eq!(w.fired.len(), times.len());
        prop_assert!(w.fired.windows(2).all(|p| p[0] <= p[1]));
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(w.fired, sorted);
    }

    /// run_until never executes events beyond the horizon, and resuming
    /// executes exactly the remainder.
    #[test]
    fn run_until_partitions_execution(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        horizon in 0u64..1_000_000,
    ) {
        struct W { n_before: usize, n_after: usize }
        let mut sim: Sim<W> = Sim::new();
        let mut w = W { n_before: 0, n_after: 0 };
        let h = SimTime::from_micros(horizon);
        for &t in &times {
            sim.schedule_at(SimTime::from_micros(t), move |w: &mut W, s| {
                if s.now() <= h { w.n_before += 1 } else { w.n_after += 1 }
            });
        }
        sim.run_until(&mut w, h);
        let expected_before = times.iter().filter(|&&t| t <= horizon).count();
        prop_assert_eq!(w.n_before, expected_before);
        prop_assert_eq!(w.n_after, 0);
        sim.run(&mut w);
        prop_assert_eq!(w.n_before + w.n_after, times.len());
    }

    /// FIFO CPU: completions are non-decreasing, each job takes at least its
    /// service time, and total busy time equals the sum of service times.
    #[test]
    fn fifo_cpu_conservation(
        jobs in prop::collection::vec((0u64..100_000, 1u64..10_000), 1..100),
        speed in 0.25f64..4.0,
    ) {
        let mut cpu = FifoCpu::new(speed);
        let mut jobs = jobs;
        jobs.sort_by_key(|&(at, _)| at);
        let mut last_done = SimTime::ZERO;
        let mut total_service = 0.0;
        for &(at, demand) in &jobs {
            let at = SimTime::from_micros(at);
            let demand = SimDuration::from_micros(demand);
            let done = cpu.submit(at, demand);
            let service_s = demand.as_secs_f64() / speed;
            total_service += service_s;
            prop_assert!(done >= last_done, "completions monotone");
            prop_assert!(
                (done - at).as_secs_f64() >= service_s - 2e-6,
                "job cannot finish faster than its service time"
            );
            last_done = done;
        }
        // Utilization over a window covering everything equals total service.
        let horizon = SimTime::from_micros(last_done.as_micros() + 1);
        let measured = cpu.utilization(horizon) * horizon.as_secs_f64();
        prop_assert!((measured - total_service).abs() < 1e-3,
            "busy-time conservation: measured {} vs {}", measured, total_service);
    }

    /// The slab agenda fires equal-timestamp events in FIFO schedule order —
    /// exactly the order a reference `(time, seq)` binary heap produces,
    /// including children scheduled mid-batch at the current tick. Times are
    /// drawn from a tiny range so nearly every step has ties.
    #[test]
    fn agenda_matches_reference_heap_with_fifo_ties(
        times in prop::collection::vec(0u64..40, 1..120),
        delays in prop::collection::vec(0u64..5, 1..120),
    ) {
        let n = times.len() as u32;
        let delay = |i: usize| delays[i % delays.len()];

        // Real kernel: every event logs (now, payload); every third payload
        // schedules one child, possibly at the current tick (delay 0).
        type Log = Rc<RefCell<Vec<(u64, u32)>>>;
        struct W { log: Log }
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Sim<W> = Sim::new();
        let mut w = W { log: log.clone() };
        for (i, &t) in times.iter().enumerate() {
            let p = i as u32;
            let d = delay(i);
            sim.schedule_at(SimTime::from_micros(t), move |w: &mut W, s| {
                w.log.borrow_mut().push((s.now().as_micros(), p));
                if p.is_multiple_of(3) {
                    s.schedule_in(SimDuration::from_micros(d), move |w: &mut W, s| {
                        w.log.borrow_mut().push((s.now().as_micros(), n + p));
                    });
                }
            });
        }
        sim.run(&mut w);
        let real = log.borrow().clone();

        // Reference model: min-heap keyed (time, seq) with seq assigned in
        // the same order the kernel saw the schedule calls.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, &t) in times.iter().enumerate() {
            heap.push(Reverse((t, seq, i as u32)));
            seq += 1;
        }
        let mut model = Vec::new();
        while let Some(Reverse((t, _, p))) = heap.pop() {
            model.push((t, p));
            if p < n && p % 3 == 0 {
                heap.push(Reverse((t + delay(p as usize), seq, n + p)));
                seq += 1;
            }
        }
        prop_assert_eq!(real, model);
    }

    /// The RNG's uniform integer generator is unbiased enough to hit every
    /// bucket of a small range, and never exceeds the bound.
    #[test]
    fn rng_below_in_bounds(seed in any::<u64>(), n in 1u64..64) {
        let mut rng = Rng::new(seed);
        for _ in 0..500 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Derived streams with different labels differ; same label matches.
    #[test]
    fn rng_derivation_stable(seed in any::<u64>()) {
        let root = Rng::new(seed);
        let mut a1 = root.derive("alpha");
        let mut a2 = root.derive("alpha");
        let mut b = root.derive("beta");
        let xs1: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let xs2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        prop_assert_eq!(&xs1, &xs2);
        prop_assert_ne!(&xs1, &ys);
    }
}

/// Non-proptest sanity: nested event scheduling preserves determinism with
/// interior mutability in the world (the pattern the cluster uses).
#[test]
fn nested_scheduling_deterministic() {
    type Log = Rc<RefCell<Vec<(u64, u32)>>>;
    fn run() -> Vec<(u64, u32)> {
        struct W {
            log: Log,
        }
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Sim<W> = Sim::new();
        let mut w = W { log: log.clone() };
        for i in 0..50u32 {
            sim.schedule_at(
                SimTime::from_micros((i as u64 * 131) % 997),
                move |w: &mut W, s| {
                    w.log.borrow_mut().push((s.now().as_micros(), i));
                    if i % 3 == 0 {
                        s.schedule_in(SimDuration::from_micros(11), move |w: &mut W, s| {
                            w.log.borrow_mut().push((s.now().as_micros(), 1000 + i));
                        });
                    }
                },
            );
        }
        sim.run(&mut w);
        let result = log.borrow().clone();
        result
    }
    assert_eq!(run(), run());
}
