//! Freshness-bounded routing: the policy filter over the proxy's balancer.

use crate::session::SessionToken;
use crate::watermark::WatermarkTable;
use amdb_proxy::{OpClass, Proxy, Route};

/// What a read is allowed to see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConsistencyPolicy {
    /// Any live slave (today's behavior, byte-identical to no policy).
    Eventual,
    /// Only slaves whose estimated staleness is strictly below `max_ms`.
    /// `max_ms: 0.0` therefore admits no slave — master-only reads.
    BoundedStaleness { max_ms: f64 },
    /// Only slaves that have applied the session's last write.
    ReadYourWrites,
    /// Only slaves at or past the watermark of the session's last read.
    Monotonic,
}

impl ConsistencyPolicy {
    /// Display name for reports.
    pub fn label(&self) -> String {
        match self {
            ConsistencyPolicy::Eventual => "eventual".into(),
            ConsistencyPolicy::BoundedStaleness { max_ms } => format!("bounded({max_ms:.0}ms)"),
            ConsistencyPolicy::ReadYourWrites => "read-your-writes".into(),
            ConsistencyPolicy::Monotonic => "monotonic".into(),
        }
    }
}

/// What to do when live slaves exist but none qualifies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FallbackPolicy {
    /// Serve the read from the master immediately (fresh by definition).
    RedirectToMaster,
    /// Park the read and re-evaluate once a slave should have caught up;
    /// past the deadline, redirect to the master after all.
    WaitForCatchup { deadline_ms: f64 },
}

impl FallbackPolicy {
    /// Display name for reports.
    pub fn label(&self) -> String {
        match self {
            FallbackPolicy::RedirectToMaster => "redirect-to-master".into(),
            FallbackPolicy::WaitForCatchup { deadline_ms } => format!("wait({deadline_ms:.0}ms)"),
        }
    }
}

/// The policy layer's verdict for one read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadDecision {
    /// Routed through the proxy (slave pick among the eligible set, or the
    /// proxy's own master fallback when no slave is even alive). Proxy
    /// counters are already updated.
    Route(Route),
    /// Live slaves exist but none qualifies: re-evaluate in `recheck_ms`.
    WaitRetry { recheck_ms: f64 },
    /// Live slaves exist but none qualifies (or the wait deadline passed):
    /// serve from the master. Counted by the *policy* layer, distinct from
    /// the proxy's no-slave-alive fallback.
    RedirectMaster,
}

/// The complete policy configuration for a deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsistencyConfig {
    pub policy: ConsistencyPolicy,
    pub fallback: FallbackPolicy,
    /// Floor for wait-for-catchup rechecks (ms), so a near-zero ETA cannot
    /// busy-spin the scheduler.
    pub min_wait_ms: f64,
}

impl ConsistencyConfig {
    /// Policy with the redirect fallback and default wait floor.
    pub fn new(policy: ConsistencyPolicy) -> Self {
        Self {
            policy,
            fallback: FallbackPolicy::RedirectToMaster,
            min_wait_ms: 5.0,
        }
    }

    /// Same policy, wait-for-catchup fallback with the given deadline.
    pub fn with_wait(mut self, deadline_ms: f64) -> Self {
        self.fallback = FallbackPolicy::WaitForCatchup { deadline_ms };
        self
    }

    /// Decide one read. `waited_ms` is how long this read has already been
    /// parked by earlier [`ReadDecision::WaitRetry`] verdicts (0 on first
    /// attempt).
    ///
    /// Pure bookkeeping: no scheduling, no randomness beyond the single
    /// balancer pick. `Eventual` takes the exact unfiltered
    /// [`Proxy::route`] path, so it stays byte-identical to a proxy with no
    /// policy layer at all.
    pub fn decide_read(
        &self,
        proxy: &mut Proxy,
        wm: &WatermarkTable,
        session: &SessionToken,
        now_ms: f64,
        waited_ms: f64,
    ) -> ReadDecision {
        if self.policy == ConsistencyPolicy::Eventual {
            return ReadDecision::Route(proxy.route(OpClass::Read));
        }
        let n = proxy.n_slaves();
        let mut eligible = vec![false; n];
        let mut any_alive = false;
        let mut any_eligible = false;
        for (s, e) in eligible.iter_mut().enumerate() {
            if !proxy.slave_status(s).alive {
                continue;
            }
            any_alive = true;
            *e = match self.policy {
                ConsistencyPolicy::Eventual => true,
                ConsistencyPolicy::BoundedStaleness { max_ms } => {
                    wm.est_staleness_ms(s, now_ms) < max_ms
                }
                ConsistencyPolicy::ReadYourWrites => wm.applied_seq(s) >= session.last_write_seq(),
                ConsistencyPolicy::Monotonic => wm.applied_seq(s) >= session.last_read_seq(),
            };
            any_eligible |= *e;
        }
        if any_eligible {
            return ReadDecision::Route(proxy.route_read_among(&eligible));
        }
        if !any_alive {
            // Nothing to wait for: the proxy's own dead-slave fallback path
            // (which counts `reads_fallback_master`) is authoritative here.
            return ReadDecision::Route(proxy.route(OpClass::Read));
        }
        match self.fallback {
            FallbackPolicy::RedirectToMaster => ReadDecision::RedirectMaster,
            FallbackPolicy::WaitForCatchup { deadline_ms } => {
                if waited_ms >= deadline_ms {
                    return ReadDecision::RedirectMaster;
                }
                let eta = (0..n)
                    .filter(|&s| proxy.slave_status(s).alive)
                    .map(|s| self.eta_to_eligible_ms(wm, session, s))
                    .fold(f64::INFINITY, f64::min);
                let budget = deadline_ms - waited_ms;
                let recheck_ms = eta.clamp(self.min_wait_ms, budget.max(self.min_wait_ms));
                ReadDecision::WaitRetry { recheck_ms }
            }
        }
    }

    /// Estimated time until slave `s` qualifies under the active policy.
    fn eta_to_eligible_ms(&self, wm: &WatermarkTable, session: &SessionToken, s: usize) -> f64 {
        match self.policy {
            ConsistencyPolicy::Eventual => 0.0,
            ConsistencyPolicy::BoundedStaleness { .. } => wm.eta_catchup_ms(s),
            ConsistencyPolicy::ReadYourWrites => wm.eta_to_seq_ms(s, session.last_write_seq()),
            ConsistencyPolicy::Monotonic => wm.eta_to_seq_ms(s, session.last_read_seq()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdb_proxy::RoundRobin;

    fn proxy(n: usize) -> Proxy {
        Proxy::new(n, Box::new(RoundRobin::default()))
    }

    #[test]
    fn eventual_is_plain_route() {
        let mut p = proxy(2);
        let wm = WatermarkTable::new(2, 0);
        let cfg = ConsistencyConfig::new(ConsistencyPolicy::Eventual);
        let d = cfg.decide_read(&mut p, &wm, &SessionToken::new(), 0.0, 0.0);
        assert_eq!(d, ReadDecision::Route(Route::Slave(0)));
        assert_eq!(p.reads_per_slave(), &[1, 0]);
    }

    #[test]
    fn zero_bound_never_routes_to_a_slave() {
        let mut p = proxy(3);
        let mut wm = WatermarkTable::new(3, 0);
        let cfg = ConsistencyConfig::new(ConsistencyPolicy::BoundedStaleness { max_ms: 0.0 });
        // Even fully caught-up slaves (staleness exactly 0.0) are excluded:
        // the bound is strict.
        let d = cfg.decide_read(&mut p, &wm, &SessionToken::new(), 50.0, 0.0);
        assert_eq!(d, ReadDecision::RedirectMaster);
        // And lagging ones obviously too.
        wm.note_master_seq(10, 0.0);
        let d = cfg.decide_read(&mut p, &wm, &SessionToken::new(), 50.0, 0.0);
        assert_eq!(d, ReadDecision::RedirectMaster);
        assert_eq!(p.reads_per_slave(), &[0, 0, 0]);
    }

    #[test]
    fn bounded_staleness_filters_to_fresh_slaves() {
        let mut p = proxy(2);
        let mut wm = WatermarkTable::new(2, 0);
        wm.note_master_seq(4, 100.0);
        wm.note_applied(0, 4, 110.0, false); // slave 0 caught up
        let cfg = ConsistencyConfig::new(ConsistencyPolicy::BoundedStaleness { max_ms: 50.0 });
        // Slave 1 is 400 ms stale; only slave 0 qualifies — repeatedly.
        for _ in 0..3 {
            let d = cfg.decide_read(&mut p, &wm, &SessionToken::new(), 500.0, 0.0);
            assert_eq!(d, ReadDecision::Route(Route::Slave(0)));
        }
        assert_eq!(p.reads_per_slave(), &[3, 0]);
    }

    #[test]
    fn read_your_writes_requires_the_users_write() {
        let mut p = proxy(2);
        let mut wm = WatermarkTable::new(2, 0);
        wm.note_master_seq(5, 0.0);
        wm.note_applied(0, 3, 1.0, true);
        wm.note_applied(1, 5, 1.0, false);
        let mut sess = SessionToken::new();
        sess.observe_write(4);
        let cfg = ConsistencyConfig::new(ConsistencyPolicy::ReadYourWrites);
        let d = cfg.decide_read(&mut p, &wm, &sess, 2.0, 0.0);
        assert_eq!(
            d,
            ReadDecision::Route(Route::Slave(1)),
            "only slave 1 has seq 4"
        );
        // A session with no writes accepts any slave.
        let d = cfg.decide_read(&mut p, &wm, &SessionToken::new(), 2.0, 0.0);
        assert!(matches!(d, ReadDecision::Route(Route::Slave(_))));
    }

    #[test]
    fn monotonic_never_travels_backwards() {
        let mut p = proxy(2);
        let mut wm = WatermarkTable::new(2, 0);
        wm.note_master_seq(6, 0.0);
        wm.note_applied(0, 6, 1.0, false);
        wm.note_applied(1, 2, 1.0, true);
        let mut sess = SessionToken::new();
        sess.observe_read(6); // read served by slave 0
        let cfg = ConsistencyConfig::new(ConsistencyPolicy::Monotonic);
        let d = cfg.decide_read(&mut p, &wm, &sess, 2.0, 0.0);
        assert_eq!(
            d,
            ReadDecision::Route(Route::Slave(0)),
            "slave 1 would rewind"
        );
    }

    #[test]
    fn wait_fallback_schedules_then_deadlines_to_master() {
        let mut p = proxy(1);
        let mut wm = WatermarkTable::new(1, 0);
        wm.set_default_interval_ms(10.0);
        wm.note_master_seq(3, 0.0);
        let cfg = ConsistencyConfig::new(ConsistencyPolicy::BoundedStaleness { max_ms: 1.0 })
            .with_wait(100.0);
        let d = cfg.decide_read(&mut p, &wm, &SessionToken::new(), 5.0, 0.0);
        // ETA = 3 events × 10 ms.
        assert_eq!(d, ReadDecision::WaitRetry { recheck_ms: 30.0 });
        // Past the deadline: give up and redirect.
        let d = cfg.decide_read(&mut p, &wm, &SessionToken::new(), 5.0, 100.0);
        assert_eq!(d, ReadDecision::RedirectMaster);
    }

    #[test]
    fn wait_recheck_respects_floor_and_budget() {
        let mut p = proxy(1);
        let mut wm = WatermarkTable::new(1, 0);
        wm.set_default_interval_ms(0.001); // near-zero ETA
        wm.note_master_seq(1, 0.0);
        let cfg = ConsistencyConfig::new(ConsistencyPolicy::BoundedStaleness { max_ms: 0.0 })
            .with_wait(50.0);
        let ReadDecision::WaitRetry { recheck_ms } =
            cfg.decide_read(&mut p, &wm, &SessionToken::new(), 0.0, 0.0)
        else {
            panic!("must wait")
        };
        assert!(recheck_ms >= cfg.min_wait_ms, "floor applies: {recheck_ms}");
        // Nearly exhausted budget still clamps to the floor, not below.
        let ReadDecision::WaitRetry { recheck_ms } =
            cfg.decide_read(&mut p, &wm, &SessionToken::new(), 0.0, 49.9)
        else {
            panic!("must wait")
        };
        assert!(recheck_ms >= cfg.min_wait_ms);
    }

    #[test]
    fn no_live_slaves_uses_proxy_fallback_counter() {
        let mut p = proxy(2);
        p.set_alive(0, false);
        p.set_alive(1, false);
        let wm = WatermarkTable::new(2, 0);
        let cfg = ConsistencyConfig::new(ConsistencyPolicy::ReadYourWrites);
        let d = cfg.decide_read(&mut p, &wm, &SessionToken::new(), 0.0, 0.0);
        assert_eq!(d, ReadDecision::Route(Route::Master));
        assert_eq!(p.reads_fallback_master(), 1);
    }

    #[test]
    fn dead_slaves_are_never_eligible() {
        let mut p = proxy(2);
        p.set_alive(0, false);
        let mut wm = WatermarkTable::new(2, 0);
        wm.note_master_seq(1, 0.0);
        wm.note_applied(0, 1, 1.0, false); // dead slave is "fresh" but dead
        let cfg = ConsistencyConfig::new(ConsistencyPolicy::BoundedStaleness { max_ms: 1e9 });
        for _ in 0..4 {
            let d = cfg.decide_read(&mut p, &wm, &SessionToken::new(), 2.0, 0.0);
            assert_eq!(d, ReadDecision::Route(Route::Slave(1)));
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(ConsistencyPolicy::Eventual.label(), "eventual");
        assert_eq!(
            ConsistencyPolicy::BoundedStaleness { max_ms: 250.0 }.label(),
            "bounded(250ms)"
        );
        assert_eq!(
            FallbackPolicy::RedirectToMaster.label(),
            "redirect-to-master"
        );
        assert_eq!(
            FallbackPolicy::WaitForCatchup { deadline_ms: 500.0 }.label(),
            "wait(500ms)"
        );
    }
}
