//! Session tokens: the client-side half of the session guarantees.

/// Per-user session state. The application tier holds one token per emulated
/// user and feeds it two observations:
///
/// * [`SessionToken::observe_write`] — the sequence the user's own write
///   committed at (read-your-writes: later reads must see at least this);
/// * [`SessionToken::observe_read`] — the apply watermark of the replica
///   that served the user's read (monotonic reads: later reads must not
///   travel backwards past this).
///
/// Both high-water marks are conservative over-approximations — the serving
/// replica's watermark can exceed what the read actually touched — which
/// only ever strengthens the guarantee.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionToken {
    last_write_seq: u64,
    last_read_seq: u64,
}

impl SessionToken {
    /// Fresh session with no history (any replica qualifies).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sequence the user's most recent write committed at.
    pub fn last_write_seq(&self) -> u64 {
        self.last_write_seq
    }

    /// Highest apply watermark among replicas that served this user's reads.
    pub fn last_read_seq(&self) -> u64 {
        self.last_read_seq
    }

    /// Record a committed write at `seq` (monotone).
    pub fn observe_write(&mut self, seq: u64) {
        self.last_write_seq = self.last_write_seq.max(seq);
    }

    /// Record a read served by a replica applied up to `seq` (monotone).
    pub fn observe_read(&mut self, seq: u64) {
        self.last_read_seq = self.last_read_seq.max(seq);
    }

    /// Forget all history (failover resets the sequence space; the old
    /// guarantees are void along with any lost writes).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_are_monotone() {
        let mut t = SessionToken::new();
        t.observe_write(5);
        t.observe_write(3);
        assert_eq!(t.last_write_seq(), 5);
        t.observe_read(9);
        t.observe_read(2);
        assert_eq!(t.last_read_seq(), 9);
    }

    #[test]
    fn reset_clears_history() {
        let mut t = SessionToken::new();
        t.observe_write(5);
        t.observe_read(9);
        t.reset();
        assert_eq!(t, SessionToken::new());
    }
}
