//! # amdb-consistency — application-managed staleness bounds & session guarantees
//!
//! The paper *measures* the replication-delay window (Figs. 5–6) but routes
//! reads obliviously: every read risks the full staleness window. This crate
//! is the layer that *acts* on the measurement — the client-centric
//! guarantees of the replica-consistency survey literature (read-your-writes,
//! monotonic reads, bounded staleness) built on exactly the signals an
//! application-managed deployment already owns:
//!
//! * [`WatermarkTable`] — GTID-style watermark tracking. The replication
//!   tier stamps every shipped writeset with a monotone sequence (the binlog
//!   LSN *is* that sequence); each slave's SQL thread advances an
//!   `applied_seq` as it drains its relay log. The proxy tier keeps, per
//!   slave, the apply progress, an EWMA of the observed apply rate, and a
//!   ring of commit stamps, from which it estimates each slave's staleness
//!   without touching the slave.
//! * [`SessionToken`] — per-user session state (`last_write_seq`,
//!   `last_read_seq`) giving Cloudstone users read-your-writes and monotonic
//!   reads over an eventually-consistent slave tier.
//! * [`ConsistencyPolicy`] + [`FallbackPolicy`] — freshness-bounded routing:
//!   a policy filter that wraps *any* existing balancer, restricting its
//!   choice to the eligible slaves and, when none qualify, either redirecting
//!   to the master or waiting (with a deadline) for a slave to catch up.
//!
//! The decision procedure ([`ConsistencyConfig::decide_read`]) is pure
//! bookkeeping over [`Proxy`] state: it schedules nothing and consumes no
//! randomness beyond the one balancer pick the unfiltered proxy would make,
//! so wiring it into a deterministic simulation cannot perturb runs that do
//! not opt in — and `Eventual` is byte-identical to no policy at all.

mod router;
mod session;
mod watermark;

pub use router::{ConsistencyConfig, ConsistencyPolicy, FallbackPolicy, ReadDecision};
pub use session::SessionToken;
pub use watermark::{SeqSource, WatermarkTable};

// Re-exported so policy-layer callers don't need a separate amdb-proxy dep
// just to match on the decision.
pub use amdb_proxy::Route;
