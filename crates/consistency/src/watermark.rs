//! GTID-style watermark tracking: per-slave apply progress plus estimated
//! staleness, maintained entirely at the proxy tier.

use std::collections::VecDeque;

/// EWMA smoothing factor for the observed per-event apply interval.
const APPLY_EWMA_ALPHA: f64 = 0.2;

/// How many commit stamps the ring retains. Beyond this, the oldest known
/// stamp lower-bounds the age of evicted sequences (a slave that far behind
/// is ineligible under any realistic bound anyway).
const STAMP_RING_CAP: usize = 4096;

#[derive(Debug, Clone)]
struct SlaveWatermark {
    /// Writesets applied so far (sequence numbers are 1-based counts, so
    /// this is also the highest applied sequence).
    applied_seq: u64,
    /// When the last apply was observed (ms).
    last_apply_ms: f64,
    /// Whether `last_apply_ms` is meaningful yet.
    seen_apply: bool,
    /// EWMA of the per-event apply interval (ms/event), sampled only from
    /// busy periods (see [`WatermarkTable::note_applied`]).
    ewma_interval_ms: f64,
    /// Samples feeding the EWMA.
    samples: u64,
}

impl SlaveWatermark {
    fn at(seq: u64) -> Self {
        Self {
            applied_seq: seq,
            last_apply_ms: 0.0,
            seen_apply: false,
            ewma_interval_ms: 0.0,
            samples: 0,
        }
    }
}

/// Where a [`WatermarkTable`]'s master sequence comes from — the LSN source
/// the consistency plane builds its guarantees on.
///
/// * [`SeqSource::MasterHead`]: the binlog backends stamp the master's log
///   head at ship (= commit) time. The freshest signal, but it can name
///   writes that die with the master (the §II loss window) — which is why
///   binlog failover voids the sequence space and resets the table.
/// * [`SeqSource::QuorumDurable`]: the shared-log backend stamps the log
///   service's quorum-durable prefix instead. The signal trails the head by
///   the quorum wait, but every sequence it names survives any fault within
///   the quorum budget, so a reattach keeps the table — and every session
///   token — intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeqSource {
    /// Master binlog head, stamped at ship time (binlog backends).
    #[default]
    MasterHead,
    /// Shared-log quorum-durable prefix, stamped when the quorum forms.
    QuorumDurable,
}

impl SeqSource {
    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SeqSource::MasterHead => "master-head",
            SeqSource::QuorumDurable => "quorum-durable",
        }
    }
}

/// Per-slave apply progress and staleness estimation.
///
/// The master side stamps each committed writeset sequence with its commit
/// time ([`Self::note_master_seq`]); each slave's apply thread advances its
/// watermark ([`Self::note_applied`]). From those two signals the table
/// derives, per slave:
///
/// * **estimated staleness** — how old the slave's view is: the age of the
///   first *unapplied* writeset's commit stamp ("seq lag × observed apply
///   rate" is what closes the gap; the stamp ring is what anchors it to
///   wall-clock age). Zero when fully caught up.
/// * **catch-up ETA** — sequence lag × the observed per-event apply
///   interval, used to schedule wait-for-catchup retries.
#[derive(Debug, Clone)]
pub struct WatermarkTable {
    master_seq: u64,
    /// Sequence number of `stamps[0]` (stamps hold consecutive sequences).
    first_stamped: u64,
    /// Commit stamp (ms) per sequence, oldest first.
    stamps: VecDeque<f64>,
    slaves: Vec<SlaveWatermark>,
    /// Cold-start per-event apply interval (ms) used until a slave has
    /// produced at least one busy-period sample.
    default_interval_ms: f64,
    /// What the master sequence means (head vs quorum-durable).
    source: SeqSource,
}

impl WatermarkTable {
    /// Table for `n_slaves` replicas that are current as of sequence
    /// `start_seq` (non-zero when the replicas were pre-loaded).
    pub fn new(n_slaves: usize, start_seq: u64) -> Self {
        Self {
            master_seq: start_seq,
            first_stamped: start_seq + 1,
            stamps: VecDeque::new(),
            slaves: (0..n_slaves)
                .map(|_| SlaveWatermark::at(start_seq))
                .collect(),
            default_interval_ms: 1.0,
            source: SeqSource::default(),
        }
    }

    /// Override the cold-start apply interval (ms/event).
    pub fn set_default_interval_ms(&mut self, ms: f64) {
        self.default_interval_ms = ms.max(0.0);
    }

    /// Declare what [`Self::note_master_seq`] is fed with (see [`SeqSource`]).
    /// Purely descriptive — the estimator math is identical either way; the
    /// *failover contract* is what differs, and reports surface the label.
    pub fn set_source(&mut self, source: SeqSource) {
        self.source = source;
    }

    /// The declared master-sequence source.
    pub fn source(&self) -> SeqSource {
        self.source
    }

    /// Number of tracked slaves.
    pub fn n_slaves(&self) -> usize {
        self.slaves.len()
    }

    /// Highest stamped (committed) sequence on the master.
    pub fn master_seq(&self) -> u64 {
        self.master_seq
    }

    /// Highest sequence slave `s` has applied.
    pub fn applied_seq(&self, s: usize) -> u64 {
        self.slaves[s].applied_seq
    }

    /// Sequence lag of slave `s` (events committed but not yet applied).
    /// Saturating: a freshly resynced slave can briefly be *ahead* of the
    /// last stamped commit.
    pub fn lag(&self, s: usize) -> u64 {
        self.master_seq.saturating_sub(self.slaves[s].applied_seq)
    }

    /// The master committed up to `seq` at time `now_ms`: stamp every new
    /// sequence with this commit time. Monotone; stale calls are no-ops.
    pub fn note_master_seq(&mut self, seq: u64, now_ms: f64) {
        while self.master_seq < seq {
            self.master_seq += 1;
            self.stamps.push_back(now_ms);
            if self.stamps.len() > STAMP_RING_CAP {
                self.stamps.pop_front();
                self.first_stamped += 1;
            }
        }
    }

    /// Slave `s` has applied up to `seq` at `now_ms`. `backlogged` reports
    /// whether the slave still has queued writesets *after* this apply: only
    /// busy-period intervals feed the apply-rate EWMA, so think-time gaps
    /// between writes don't masquerade as slow applies.
    pub fn note_applied(&mut self, s: usize, seq: u64, now_ms: f64, backlogged: bool) {
        let w = &mut self.slaves[s];
        if seq <= w.applied_seq {
            return;
        }
        let events = seq - w.applied_seq;
        if w.seen_apply && (backlogged || events > 1) {
            let per_event = (now_ms - w.last_apply_ms).max(0.0) / events as f64;
            w.ewma_interval_ms = if w.samples == 0 {
                per_event
            } else {
                APPLY_EWMA_ALPHA * per_event + (1.0 - APPLY_EWMA_ALPHA) * w.ewma_interval_ms
            };
            w.samples += 1;
        }
        w.applied_seq = seq;
        w.last_apply_ms = now_ms;
        w.seen_apply = true;
    }

    /// Estimated staleness of slave `s` at `now_ms` (ms): the age of the
    /// first unapplied writeset's commit stamp, zero when caught up. For
    /// sequences older than the stamp ring the oldest retained stamp is
    /// used (a lower bound — such a slave is already hopelessly behind).
    pub fn est_staleness_ms(&self, s: usize, now_ms: f64) -> f64 {
        if self.lag(s) == 0 {
            return 0.0;
        }
        let first_unapplied = self.slaves[s].applied_seq + 1;
        let stamp = if first_unapplied < self.first_stamped {
            self.stamps.front().copied()
        } else {
            self.stamps
                .get((first_unapplied - self.first_stamped) as usize)
                .copied()
        };
        match stamp {
            Some(t) => (now_ms - t).max(0.0),
            None => 0.0, // lag > 0 with no stamps: nothing committed since construction
        }
    }

    /// Observed per-event apply interval for slave `s` (ms/event), falling
    /// back to the cold-start default before any busy-period sample.
    pub fn apply_interval_ms(&self, s: usize) -> f64 {
        let w = &self.slaves[s];
        if w.samples > 0 {
            w.ewma_interval_ms
        } else {
            self.default_interval_ms
        }
    }

    /// Estimated time (ms) for slave `s` to apply everything committed so
    /// far: sequence lag × observed apply rate.
    pub fn eta_catchup_ms(&self, s: usize) -> f64 {
        self.eta_to_seq_ms(s, self.master_seq)
    }

    /// Estimated time (ms) for slave `s` to reach `target_seq`.
    pub fn eta_to_seq_ms(&self, s: usize, target_seq: u64) -> f64 {
        let needed = target_seq.saturating_sub(self.slaves[s].applied_seq);
        needed as f64 * self.apply_interval_ms(s)
    }

    /// Slave `s` was replaced by a replica current as of `seq` (snapshot
    /// resync): its watermark restarts there with a cold apply history.
    pub fn reset_slave(&mut self, s: usize, seq: u64) {
        self.slaves[s] = SlaveWatermark::at(seq);
    }

    /// A new slave joined, current as of `seq`. Returns its index.
    pub fn push_slave(&mut self, seq: u64) -> usize {
        self.slaves.push(SlaveWatermark::at(seq));
        self.slaves.len() - 1
    }

    /// Failover: the new master starts a fresh sequence space at
    /// `start_seq`, and every slave was just resynced from its snapshot.
    ///
    /// Only valid when the old sequence space actually dies with the old
    /// master (binlog backends, whose LSNs restart from the promoted
    /// node's fresh log). A shared-log reattach **must not** call this:
    /// the log outlives the master, the LSN space continues, and the tail
    /// may be re-delivered — resetting to 0 would let a `Monotonic` or
    /// `ReadYourWrites` session token (holding a pre-failover sequence)
    /// compare against rewound watermarks and route a read to a replica
    /// that has not actually caught up to what the session already saw.
    pub fn reset_all(&mut self, start_seq: u64) {
        self.master_seq = start_seq;
        self.first_stamped = start_seq + 1;
        self.stamps.clear();
        for w in &mut self.slaves {
            *w = SlaveWatermark::at(start_seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caught_up_slave_has_zero_staleness_and_lag() {
        let mut wm = WatermarkTable::new(2, 0);
        wm.note_master_seq(3, 100.0);
        wm.note_applied(0, 3, 120.0, false);
        assert_eq!(wm.lag(0), 0);
        assert_eq!(wm.est_staleness_ms(0, 500.0), 0.0);
        assert_eq!(wm.lag(1), 3);
    }

    #[test]
    fn staleness_is_age_of_first_unapplied_commit() {
        let mut wm = WatermarkTable::new(1, 0);
        wm.note_master_seq(1, 100.0);
        wm.note_master_seq(2, 250.0);
        // Nothing applied: first unapplied is seq 1, committed at t=100.
        assert_eq!(wm.est_staleness_ms(0, 300.0), 200.0);
        wm.note_applied(0, 1, 300.0, true);
        // Now seq 2 (t=250) is the frontier.
        assert_eq!(wm.est_staleness_ms(0, 300.0), 50.0);
    }

    #[test]
    fn master_seq_is_monotone_and_batch_stamps() {
        let mut wm = WatermarkTable::new(1, 0);
        wm.note_master_seq(5, 10.0);
        wm.note_master_seq(3, 99.0); // stale: no-op
        assert_eq!(wm.master_seq(), 5);
        // All five sequences stamped at t=10.
        assert_eq!(wm.est_staleness_ms(0, 110.0), 100.0);
    }

    #[test]
    fn apply_rate_ewma_only_samples_busy_periods() {
        let mut wm = WatermarkTable::new(1, 0);
        wm.note_master_seq(10, 0.0);
        wm.note_applied(0, 1, 0.0, true);
        // 2 ms per event while backlogged.
        wm.note_applied(0, 2, 2.0, true);
        assert_eq!(wm.apply_interval_ms(0), 2.0);
        // A 5-second idle gap then one apply that fully catches up must NOT
        // feed the EWMA (it would look like a 5000 ms apply).
        wm.note_applied(0, 3, 5002.0, false);
        assert_eq!(wm.apply_interval_ms(0), 2.0);
        // Multi-event applies count even if they end caught-up.
        wm.note_applied(0, 10, 5016.0, false);
        let e = wm.apply_interval_ms(0);
        assert!((e - (0.2 * 2.0 + 0.8 * 2.0)).abs() < 1e-12, "got {e}");
    }

    #[test]
    fn eta_scales_with_lag() {
        let mut wm = WatermarkTable::new(1, 0);
        wm.set_default_interval_ms(3.0);
        wm.note_master_seq(4, 0.0);
        assert_eq!(wm.eta_catchup_ms(0), 12.0);
        wm.note_applied(0, 2, 1.0, true);
        assert_eq!(wm.eta_to_seq_ms(0, 3), 3.0);
    }

    #[test]
    fn reset_and_push_track_membership() {
        let mut wm = WatermarkTable::new(1, 0);
        wm.note_master_seq(7, 1.0);
        let s = wm.push_slave(7);
        assert_eq!(s, 1);
        assert_eq!(wm.lag(1), 0);
        wm.reset_slave(0, 7);
        assert_eq!(wm.lag(0), 0);
        wm.reset_all(0);
        assert_eq!(wm.master_seq(), 0);
        assert_eq!(wm.lag(0), 0);
        assert_eq!(wm.est_staleness_ms(1, 100.0), 0.0);
    }

    #[test]
    fn resynced_slave_ahead_of_stamps_saturates() {
        let mut wm = WatermarkTable::new(1, 0);
        wm.note_master_seq(2, 1.0);
        // Snapshot resync to a head (5) beyond the last stamped commit (2).
        wm.reset_slave(0, 5);
        assert_eq!(wm.lag(0), 0);
        assert_eq!(wm.est_staleness_ms(0, 100.0), 0.0);
    }

    #[test]
    fn stamp_ring_eviction_falls_back_to_oldest_stamp() {
        let mut wm = WatermarkTable::new(1, 0);
        for i in 0..(STAMP_RING_CAP as u64 + 100) {
            wm.note_master_seq(i + 1, i as f64);
        }
        // Seq 1's stamp (t=0) was evicted; the oldest retained stamp
        // lower-bounds the age.
        let st = wm.est_staleness_ms(0, 10_000.0);
        assert!(st > 0.0 && st <= 10_000.0, "got {st}");
    }

    #[test]
    fn nonzero_start_seq_counts_as_current() {
        let wm = WatermarkTable::new(2, 42);
        assert_eq!(wm.master_seq(), 42);
        assert_eq!(wm.lag(0), 0);
        assert_eq!(wm.est_staleness_ms(0, 9.0), 0.0);
    }
}
