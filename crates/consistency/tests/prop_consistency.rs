//! Property tests for the consistency primitives: watermark invariants and
//! the strict-bound degeneracy of the routing filter.

use amdb_consistency::{
    ConsistencyConfig, ConsistencyPolicy, ReadDecision, Route, SessionToken, WatermarkTable,
};
use amdb_proxy::{Proxy, RoundRobin};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replaying any interleaving of master commits and slave applies keeps
    /// the table's core invariants: applied ≤ master, lag consistent,
    /// staleness zero exactly when caught up, and everything monotone.
    #[test]
    fn watermark_invariants_hold_under_any_interleaving(
        steps in prop::collection::vec((0..3usize, 1..5u64), 1..60)
    ) {
        let mut wm = WatermarkTable::new(2, 0);
        let mut now_ms = 0.0;
        for (kind, amount) in steps {
            now_ms += amount as f64;
            match kind {
                0 => wm.note_master_seq(wm.master_seq() + amount, now_ms),
                s => {
                    let s = s - 1;
                    let target = (wm.applied_seq(s) + amount).min(wm.master_seq());
                    wm.note_applied(s, target, now_ms, true);
                }
            }
            for s in 0..2 {
                prop_assert!(wm.applied_seq(s) <= wm.master_seq());
                prop_assert_eq!(wm.lag(s), wm.master_seq() - wm.applied_seq(s));
                let st = wm.est_staleness_ms(s, now_ms);
                if wm.lag(s) == 0 {
                    prop_assert_eq!(st, 0.0, "caught up must read fresh");
                } else {
                    prop_assert!(st >= 0.0);
                    // Staleness grows with the clock while nothing applies.
                    prop_assert!(wm.est_staleness_ms(s, now_ms + 10.0) >= st);
                }
                prop_assert!(wm.eta_catchup_ms(s) >= 0.0);
            }
        }
    }

    /// A zero bound never yields a slave route, whatever the watermark
    /// state: strict inequality makes `BoundedStaleness{0}` master-only.
    #[test]
    fn zero_bound_never_picks_a_slave(
        master in 0..200u64,
        applied in 0..200u64,
        now_ms in 0.0..1e5f64,
    ) {
        let mut wm = WatermarkTable::new(1, 0);
        wm.note_master_seq(master, 0.0);
        wm.note_applied(0, applied.min(master), 1.0, false);
        let mut proxy = Proxy::new(1, Box::new(RoundRobin::default()));
        let cfg = ConsistencyConfig::new(ConsistencyPolicy::BoundedStaleness { max_ms: 0.0 });
        let d = cfg.decide_read(&mut proxy, &wm, &SessionToken::new(), now_ms, 0.0);
        prop_assert_eq!(d, ReadDecision::RedirectMaster);
        prop_assert_eq!(proxy.reads_per_slave(), &[0]);
    }

    /// Loosening the bound only ever adds eligible slaves: if a read routes
    /// to a slave under `max_ms`, it still does under any larger bound.
    #[test]
    fn loosening_the_bound_preserves_slave_routes(
        master in 1..100u64,
        applied in 0..100u64,
        bound in 1.0..1e4f64,
        extra in 0.0..1e4f64,
    ) {
        let mut wm = WatermarkTable::new(1, 0);
        wm.note_master_seq(master, 0.0);
        wm.note_applied(0, applied.min(master), 1.0, false);
        let decide = |max_ms: f64| {
            let mut proxy = Proxy::new(1, Box::new(RoundRobin::default()));
            ConsistencyConfig::new(ConsistencyPolicy::BoundedStaleness { max_ms })
                .decide_read(&mut proxy, &wm, &SessionToken::new(), 50.0, 0.0)
        };
        if decide(bound) == ReadDecision::Route(Route::Slave(0)) {
            prop_assert_eq!(decide(bound + extra), ReadDecision::Route(Route::Slave(0)));
        }
    }
}
