//! # amdb-net — cloud network topology and latency model
//!
//! The paper places replicas in three geographic configurations (§III-A):
//! *same zone* (slaves share the master's availability zone), *different
//! zone* (same region, different AZ), and *different region*. It measured the
//! resulting one-way (½-RTT) latencies with per-second pings over 20 minutes:
//! **16 ms / 21 ms / 173 ms** respectively (§IV-B.2).
//!
//! This crate models regions, availability zones, and a latency matrix with
//! lognormal jitter calibrated to those measurements. Messages are simulated
//! as point-to-point delays sampled per message; the experiment harness uses
//! [`NetModel::delay`] both for client→replica requests and for binlog
//! writeset shipping.

use amdb_sim::{Rng, SimDuration};

/// An EC2-style region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    UsEast1,
    UsWest1,
    EuWest1,
    ApSoutheast1,
    ApNortheast1,
}

impl Region {
    /// All modeled regions, in a stable order.
    pub const ALL: [Region; 5] = [
        Region::UsEast1,
        Region::UsWest1,
        Region::EuWest1,
        Region::ApSoutheast1,
        Region::ApNortheast1,
    ];

    /// The region's API name (`us-east-1`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Region::UsEast1 => "us-east-1",
            Region::UsWest1 => "us-west-1",
            Region::EuWest1 => "eu-west-1",
            Region::ApSoutheast1 => "ap-southeast-1",
            Region::ApNortheast1 => "ap-northeast-1",
        }
    }
}

/// An availability zone: a region plus a zone letter (`us-east-1a`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Zone {
    pub region: Region,
    pub letter: char,
}

impl Zone {
    /// Construct a zone.
    pub const fn new(region: Region, letter: char) -> Self {
        Self { region, letter }
    }

    /// `us-east-1a`-style display name.
    pub fn name(self) -> String {
        format!("{}{}", self.region.name(), self.letter)
    }
}

impl std::fmt::Display for Zone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Relative placement of two endpoints, which determines base latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proximity {
    /// Same availability zone.
    SameZone,
    /// Same region, different availability zone.
    DifferentZone,
    /// Different regions.
    DifferentRegion,
}

impl Proximity {
    /// Classify a pair of zones.
    pub fn of(a: Zone, b: Zone) -> Proximity {
        if a.region != b.region {
            Proximity::DifferentRegion
        } else if a.letter != b.letter {
            Proximity::DifferentZone
        } else {
            Proximity::SameZone
        }
    }
}

/// Latency configuration: mean one-way (½-RTT) delays per proximity class
/// plus lognormal jitter.
///
/// Defaults reproduce the paper's measurements: 16 / 21 / 173 ms one-way for
/// same zone / different zone / different region, with modest jitter
/// ("network fluctuation" is the reason the paper trims 5 % tails).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Mean one-way delay within an AZ, in milliseconds.
    pub same_zone_ms: f64,
    /// Mean one-way delay across AZs of one region, in milliseconds.
    pub different_zone_ms: f64,
    /// Mean one-way delay across regions, in milliseconds (the paper measured
    /// us-east ↔ eu-west; we use one value for any region pair, which is the
    /// paper's "different region" configuration).
    pub different_region_ms: f64,
    /// Coefficient of variation of per-message jitter (lognormal).
    pub jitter_cov: f64,
    /// Fixed per-message processing overhead (ms) added on top, e.g. NIC and
    /// virtualization overhead.
    pub overhead_ms: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            same_zone_ms: 16.0,
            different_zone_ms: 21.0,
            different_region_ms: 173.0,
            jitter_cov: 0.08,
            overhead_ms: 0.3,
        }
    }
}

/// Samples message delays between zones.
#[derive(Debug, Clone)]
pub struct NetModel {
    cfg: NetConfig,
    rng: Rng,
}

impl NetModel {
    /// Build a model with the given config and a dedicated RNG stream.
    pub fn new(cfg: NetConfig, rng: Rng) -> Self {
        Self { cfg, rng }
    }

    /// Model with the paper's measured latencies.
    pub fn with_defaults(rng: Rng) -> Self {
        Self::new(NetConfig::default(), rng)
    }

    /// The configuration in use.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Mean one-way delay for a proximity class (no jitter).
    pub fn base_one_way(&self, p: Proximity) -> SimDuration {
        let ms = match p {
            Proximity::SameZone => self.cfg.same_zone_ms,
            Proximity::DifferentZone => self.cfg.different_zone_ms,
            Proximity::DifferentRegion => self.cfg.different_region_ms,
        };
        SimDuration::from_millis_f64(ms + self.cfg.overhead_ms)
    }

    /// Sample the one-way delay for one message from `from` to `to`.
    pub fn delay(&mut self, from: Zone, to: Zone) -> SimDuration {
        self.delay_by_proximity(Proximity::of(from, to))
    }

    /// Sample a one-way delay for a proximity class directly.
    pub fn delay_by_proximity(&mut self, p: Proximity) -> SimDuration {
        let base = self.base_one_way(p).as_millis_f64();
        let jittered = if self.cfg.jitter_cov > 0.0 {
            self.rng.lognormal_mean_cov(base, self.cfg.jitter_cov)
        } else {
            base
        };
        SimDuration::from_millis_f64(jittered)
    }

    /// Sample a full round-trip time (two independent one-way samples), i.e.
    /// what `ping` would report.
    pub fn rtt(&mut self, from: Zone, to: Zone) -> SimDuration {
        self.delay(from, to) + self.delay(to, from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zones() -> (Zone, Zone, Zone, Zone) {
        let a = Zone::new(Region::UsEast1, 'a');
        let same = Zone::new(Region::UsEast1, 'a');
        let diff_zone = Zone::new(Region::UsEast1, 'b');
        let diff_region = Zone::new(Region::EuWest1, 'a');
        (a, same, diff_zone, diff_region)
    }

    #[test]
    fn proximity_classification() {
        let (a, same, dz, dr) = zones();
        assert_eq!(Proximity::of(a, same), Proximity::SameZone);
        assert_eq!(Proximity::of(a, dz), Proximity::DifferentZone);
        assert_eq!(Proximity::of(a, dr), Proximity::DifferentRegion);
        assert_eq!(Proximity::of(dr, a), Proximity::DifferentRegion);
    }

    #[test]
    fn zone_names() {
        assert_eq!(Zone::new(Region::UsWest1, 'a').name(), "us-west-1a");
        assert_eq!(Region::ApNortheast1.name(), "ap-northeast-1");
    }

    #[test]
    fn mean_delays_match_paper_calibration() {
        let (a, _, dz, dr) = zones();
        let mut net = NetModel::with_defaults(Rng::new(1));
        let n = 20_000;
        let avg = |net: &mut NetModel, to: Zone| -> f64 {
            (0..n)
                .map(|_| net.delay(a, to).as_millis_f64())
                .sum::<f64>()
                / n as f64
        };
        let same = avg(&mut net, a);
        let zone = avg(&mut net, dz);
        let region = avg(&mut net, dr);
        assert!((same - 16.3).abs() < 0.5, "same-zone mean {same}");
        assert!((zone - 21.3).abs() < 0.5, "diff-zone mean {zone}");
        assert!((region - 173.3).abs() < 2.0, "diff-region mean {region}");
        assert!(same < zone && zone < region, "ordering preserved");
    }

    #[test]
    fn jitter_produces_variation_but_no_negatives() {
        let (a, _, _, dr) = zones();
        let mut net = NetModel::with_defaults(Rng::new(2));
        let xs: Vec<f64> = (0..1000)
            .map(|_| net.delay(a, dr).as_millis_f64())
            .collect();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min > 0.0);
        assert!(max > min, "jitter present");
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let (a, _, dz, _) = zones();
        let cfg = NetConfig {
            jitter_cov: 0.0,
            ..NetConfig::default()
        };
        let mut net = NetModel::new(cfg, Rng::new(3));
        let d1 = net.delay(a, dz);
        let d2 = net.delay(a, dz);
        assert_eq!(d1, d2);
        assert_eq!(d1.as_millis_f64(), 21.3);
    }

    #[test]
    fn rtt_is_roughly_twice_one_way() {
        let (a, _, _, dr) = zones();
        let mut net = NetModel::with_defaults(Rng::new(4));
        let n = 5_000;
        let avg_rtt: f64 = (0..n).map(|_| net.rtt(a, dr).as_millis_f64()).sum::<f64>() / n as f64;
        assert!((avg_rtt - 2.0 * 173.3).abs() < 4.0, "rtt {avg_rtt}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _, _, dr) = zones();
        let mut n1 = NetModel::with_defaults(Rng::new(9));
        let mut n2 = NetModel::with_defaults(Rng::new(9));
        for _ in 0..100 {
            assert_eq!(n1.delay(a, dr), n2.delay(a, dr));
        }
    }
}
