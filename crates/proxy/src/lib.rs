//! # amdb-proxy — read/write splitting and slave load balancing
//!
//! The paper's customized Cloudstone interposes a proxy (MySQL Connector/J's
//! replication driver) that "works as a load balancer among the available
//! database replicas where all write operations are sent to the master while
//! all read operations are distributed among slaves" (§III-A).
//!
//! This crate implements that router with pluggable balancing policies. The
//! paper's conclusion suggests geographic replication is viable "as long as
//! workload characteristics can be well managed (e.g. having a smart load
//! balancer which is able of balancing the operations based on estimated
//! processing time)" — the [`LatencyAware`] policy implements exactly that
//! suggestion and is compared against the baselines in ablation A2.

use amdb_sim::Rng;

/// Statement class for routing purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    Read,
    Write,
}

/// Routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    Master,
    /// Index into the slave list.
    Slave(usize),
}

/// Live per-slave state the balancer can consult.
#[derive(Debug, Clone)]
pub struct SlaveStatus {
    /// Reads currently in flight to this slave.
    pub outstanding: u32,
    /// Exponentially-weighted moving average of observed read latency (ms).
    /// Meaningless until `ewma_samples > 0`.
    pub ewma_latency_ms: f64,
    /// How many latency samples have fed the EWMA. Tracked explicitly so a
    /// genuine 0.0 ms sample is smoothed like any other instead of being
    /// mistaken for "uninitialized".
    pub ewma_samples: u64,
    /// False when the slave is marked down.
    pub alive: bool,
}

impl Default for SlaveStatus {
    fn default() -> Self {
        Self {
            outstanding: 0,
            ewma_latency_ms: 0.0,
            ewma_samples: 0,
            alive: true,
        }
    }
}

/// A slave-selection policy.
pub trait Balancer {
    /// Pick a slave index among `slaves`; `None` when none is eligible
    /// (caller then falls back to the master, as Connector/J does).
    fn pick(&mut self, slaves: &[SlaveStatus]) -> Option<usize>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Round-robin over live slaves (Connector/J's default).
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Round-robin whose first pick starts at `cursor` (modulo the slave
    /// count at pick time). A sharded front instantiates one proxy per
    /// replication tree; identical cursors would make every tree's first
    /// pick — and every scatter-gather fan-out's legs — herd onto the same
    /// slave index across shards, so each tree staggers its cursor.
    pub fn starting_at(cursor: usize) -> Self {
        Self { next: cursor }
    }
}

impl Balancer for RoundRobin {
    fn pick(&mut self, slaves: &[SlaveStatus]) -> Option<usize> {
        if slaves.is_empty() {
            return None;
        }
        for off in 0..slaves.len() {
            let i = (self.next + off) % slaves.len();
            if slaves[i].alive {
                self.next = i + 1;
                return Some(i);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Uniform random over live slaves.
#[derive(Debug)]
pub struct RandomPick {
    rng: Rng,
}

impl RandomPick {
    /// Policy with its own RNG stream.
    pub fn new(rng: Rng) -> Self {
        Self { rng }
    }
}

impl Balancer for RandomPick {
    fn pick(&mut self, slaves: &[SlaveStatus]) -> Option<usize> {
        let live: Vec<usize> = (0..slaves.len()).filter(|&i| slaves[i].alive).collect();
        if live.is_empty() {
            return None;
        }
        Some(live[self.rng.below(live.len() as u64) as usize])
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Scan live slaves in cyclic order starting at `*cursor` and return the
/// index with the minimal key, advancing the cursor past the pick.
///
/// Because the scan starts at the cursor and only a *strictly* smaller key
/// replaces the incumbent, exact ties resolve to the first candidate at or
/// after the cursor — a rotating tie-break. `min_by(_key)` alone always
/// settles ties on the lowest index, which herds every read onto slave 0 at
/// cold start and whenever queue lengths synchronize.
fn pick_min_rotating<K: PartialOrd + Copy>(
    slaves: &[SlaveStatus],
    cursor: &mut usize,
    key: impl Fn(&SlaveStatus) -> K,
) -> Option<usize> {
    let n = slaves.len();
    if n == 0 {
        return None;
    }
    let mut best: Option<(usize, K)> = None;
    for off in 0..n {
        let i = (*cursor + off) % n;
        if !slaves[i].alive {
            continue;
        }
        let k = key(&slaves[i]);
        // Only a *strictly* smaller key (Ordering::Less) unseats the
        // incumbent; ties and incomparable keys (NaN) keep it.
        let replaces = match &best {
            Some((_, bk)) => matches!(k.partial_cmp(bk), Some(std::cmp::Ordering::Less)),
            None => true,
        };
        if replaces {
            best = Some((i, k));
        }
    }
    let picked = best.map(|(i, _)| i)?;
    *cursor = (picked + 1) % n;
    Some(picked)
}

/// Fewest outstanding reads wins (join-the-shortest-queue); exact ties
/// rotate round-robin instead of collapsing onto the lowest index.
#[derive(Debug, Default)]
pub struct LeastOutstanding {
    next: usize,
}

impl LeastOutstanding {
    /// Policy whose rotating tie-break cursor starts at `cursor` (see
    /// [`RoundRobin::starting_at`]): at cold start all slaves are an exact
    /// tie, so the cursor alone decides the first pick.
    pub fn starting_at(cursor: usize) -> Self {
        Self { next: cursor }
    }
}

impl Balancer for LeastOutstanding {
    fn pick(&mut self, slaves: &[SlaveStatus]) -> Option<usize> {
        pick_min_rotating(slaves, &mut self.next, |s| s.outstanding)
    }

    fn name(&self) -> &'static str {
        "least-outstanding"
    }
}

/// The paper's "smart load balancer ... based on estimated processing time":
/// picks the slave minimizing `ewma_latency × (outstanding + 1)` — an
/// estimate of the completion time of the next read if sent there. Slower or
/// farther slaves naturally receive proportionally less traffic; exact ties
/// (idle equal slaves, cold start) rotate round-robin.
#[derive(Debug, Default)]
pub struct LatencyAware {
    next: usize,
}

impl LatencyAware {
    /// Policy whose rotating tie-break cursor starts at `cursor` (see
    /// [`RoundRobin::starting_at`]).
    pub fn starting_at(cursor: usize) -> Self {
        Self { next: cursor }
    }
}

impl Balancer for LatencyAware {
    fn pick(&mut self, slaves: &[SlaveStatus]) -> Option<usize> {
        pick_min_rotating(slaves, &mut self.next, |s| {
            s.ewma_latency_ms.max(0.1) * (s.outstanding + 1) as f64
        })
    }

    fn name(&self) -> &'static str {
        "latency-aware"
    }
}

/// EWMA smoothing factor for latency feedback.
const EWMA_ALPHA: f64 = 0.2;

/// The read/write splitting proxy.
pub struct Proxy {
    balancer: Box<dyn Balancer>,
    slaves: Vec<SlaveStatus>,
    reads_routed: Vec<u64>,
    writes_routed: u64,
    reads_fallback_master: u64,
}

impl Proxy {
    /// Proxy over `n_slaves` replicas with the given policy.
    pub fn new(n_slaves: usize, balancer: Box<dyn Balancer>) -> Self {
        Self {
            balancer,
            slaves: vec![SlaveStatus::default(); n_slaves],
            reads_routed: vec![0; n_slaves],
            writes_routed: 0,
            reads_fallback_master: 0,
        }
    }

    /// Number of slaves behind the proxy.
    pub fn n_slaves(&self) -> usize {
        self.slaves.len()
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.balancer.name()
    }

    /// Route one operation. Reads go to a slave chosen by the policy (master
    /// as a last resort); writes always go to the master.
    pub fn route(&mut self, class: OpClass) -> Route {
        match class {
            OpClass::Write => {
                self.writes_routed += 1;
                Route::Master
            }
            OpClass::Read => match self.balancer.pick(&self.slaves) {
                Some(i) => {
                    self.reads_routed[i] += 1;
                    self.slaves[i].outstanding += 1;
                    Route::Slave(i)
                }
                None => {
                    self.reads_fallback_master += 1;
                    Route::Master
                }
            },
        }
    }

    /// Route one read restricted to the `eligible` slaves (a mask indexed
    /// like the slave list; shorter masks treat the missing tail as
    /// ineligible). The policy layer (amdb-consistency) computes the mask
    /// from freshness watermarks; the balancer then picks among the
    /// survivors exactly as it would have, seeing ineligible slaves as down.
    /// Falls back to the master (counting `reads_fallback_master`) when the
    /// mask admits no live slave.
    pub fn route_read_among(&mut self, eligible: &[bool]) -> Route {
        let saved: Vec<bool> = self.slaves.iter().map(|s| s.alive).collect();
        for (i, s) in self.slaves.iter_mut().enumerate() {
            s.alive &= eligible.get(i).copied().unwrap_or(false);
        }
        let pick = self.balancer.pick(&self.slaves);
        for (s, alive) in self.slaves.iter_mut().zip(saved) {
            s.alive = alive;
        }
        match pick {
            Some(i) => {
                self.reads_routed[i] += 1;
                self.slaves[i].outstanding += 1;
                Route::Slave(i)
            }
            None => {
                self.reads_fallback_master += 1;
                Route::Master
            }
        }
    }

    /// Report a read completion so outstanding counts and EWMA latencies stay
    /// current.
    pub fn read_done(&mut self, slave: usize, latency_ms: f64) {
        let s = &mut self.slaves[slave];
        debug_assert!(s.outstanding > 0, "read_done without route");
        s.outstanding = s.outstanding.saturating_sub(1);
        // First contact adopts the sample; afterwards every sample — a
        // genuine 0.0 ms included — is smoothed. (The old `== 0.0` sentinel
        // made each 0.0 ms sample look like first contact and reset the
        // average.)
        s.ewma_latency_ms = if s.ewma_samples == 0 {
            latency_ms
        } else {
            EWMA_ALPHA * latency_ms + (1.0 - EWMA_ALPHA) * s.ewma_latency_ms
        };
        s.ewma_samples += 1;
    }

    /// Mark a slave up/down.
    pub fn set_alive(&mut self, slave: usize, alive: bool) {
        self.slaves[slave].alive = alive;
    }

    /// Attach a new slave (application-managed elasticity: a freshly
    /// launched replica joins the rotation). It starts *down*; call
    /// [`Self::set_alive`] once its initial sync completes. Returns its
    /// index.
    pub fn add_slave(&mut self) -> usize {
        self.slaves.push(SlaveStatus {
            alive: false,
            ..SlaveStatus::default()
        });
        self.reads_routed.push(0);
        self.slaves.len() - 1
    }

    /// Current status snapshot of a slave.
    pub fn slave_status(&self, slave: usize) -> &SlaveStatus {
        &self.slaves[slave]
    }

    /// Reads routed per slave.
    pub fn reads_per_slave(&self) -> &[u64] {
        &self.reads_routed
    }

    /// Total writes routed (all to the master).
    pub fn writes_routed(&self) -> u64 {
        self.writes_routed
    }

    /// Reads that fell back to the master because no slave was eligible.
    pub fn reads_fallback_master(&self) -> u64 {
        self.reads_fallback_master
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_always_master() {
        let mut p = Proxy::new(3, Box::new(RoundRobin::default()));
        for _ in 0..10 {
            assert_eq!(p.route(OpClass::Write), Route::Master);
        }
        assert_eq!(p.writes_routed(), 10);
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = Proxy::new(3, Box::new(RoundRobin::default()));
        let picks: Vec<Route> = (0..6).map(|_| p.route(OpClass::Read)).collect();
        assert_eq!(
            picks,
            vec![
                Route::Slave(0),
                Route::Slave(1),
                Route::Slave(2),
                Route::Slave(0),
                Route::Slave(1),
                Route::Slave(2)
            ]
        );
        assert_eq!(p.reads_per_slave(), &[2, 2, 2]);
    }

    #[test]
    fn round_robin_skips_dead() {
        let mut p = Proxy::new(3, Box::new(RoundRobin::default()));
        p.set_alive(1, false);
        let picks: Vec<Route> = (0..4).map(|_| p.route(OpClass::Read)).collect();
        assert!(picks.iter().all(|r| *r != Route::Slave(1)));
    }

    #[test]
    fn no_slaves_falls_back_to_master() {
        let mut p = Proxy::new(0, Box::new(RoundRobin::default()));
        assert_eq!(p.route(OpClass::Read), Route::Master);
        assert_eq!(p.reads_fallback_master(), 1);
        let mut p = Proxy::new(2, Box::new(LeastOutstanding::default()));
        p.set_alive(0, false);
        p.set_alive(1, false);
        assert_eq!(p.route(OpClass::Read), Route::Master);
    }

    #[test]
    fn all_slaves_dead_counts_master_fallback() {
        // Regression: a proxy with slaves that are all *down* (not merely
        // absent) must both route to the master and account for it.
        for balancer in [
            Box::new(RoundRobin::default()) as Box<dyn Balancer>,
            Box::new(LeastOutstanding::default()),
            Box::new(LatencyAware::default()),
        ] {
            let mut p = Proxy::new(3, balancer);
            for s in 0..3 {
                p.set_alive(s, false);
            }
            for k in 1..=5u64 {
                assert_eq!(p.route(OpClass::Read), Route::Master);
                assert_eq!(p.reads_fallback_master(), k);
            }
            assert_eq!(p.reads_per_slave(), &[0, 0, 0], "no slave was charged");
            // Revival restores normal routing and stops the counter.
            p.set_alive(1, true);
            assert_eq!(p.route(OpClass::Read), Route::Slave(1));
            assert_eq!(p.reads_fallback_master(), 5);
        }
    }

    #[test]
    fn route_among_restricts_the_balancer() {
        let mut p = Proxy::new(3, Box::new(RoundRobin::default()));
        // Only slave 2 eligible: round-robin must keep landing there.
        for _ in 0..3 {
            assert_eq!(p.route_read_among(&[false, false, true]), Route::Slave(2));
        }
        assert_eq!(p.reads_per_slave(), &[0, 0, 3]);
        // Full mask behaves like a plain read route.
        assert_eq!(p.route_read_among(&[true, true, true]), Route::Slave(0));
        // Empty eligibility falls back to the master and counts it.
        assert_eq!(p.route_read_among(&[false, false, false]), Route::Master);
        assert_eq!(p.reads_fallback_master(), 1);
        // A short mask treats the missing tail as ineligible.
        assert_eq!(p.route_read_among(&[true]), Route::Slave(0));
    }

    #[test]
    fn route_among_preserves_liveness_flags() {
        let mut p = Proxy::new(2, Box::new(RoundRobin::default()));
        p.set_alive(1, false);
        // Mask says slave 1 is eligible, but it is down: master fallback.
        assert_eq!(p.route_read_among(&[false, true]), Route::Master);
        // The temporary masking must not have resurrected or killed anyone.
        assert!(p.slave_status(0).alive);
        assert!(!p.slave_status(1).alive);
        assert_eq!(p.route(OpClass::Read), Route::Slave(0));
    }

    #[test]
    fn least_outstanding_balances_inflight() {
        let mut p = Proxy::new(2, Box::new(LeastOutstanding::default()));
        let r1 = p.route(OpClass::Read);
        let r2 = p.route(OpClass::Read);
        assert_ne!(r1, r2, "second read avoids the busy slave");
        // Complete slave 0's read: next read goes there.
        if let Route::Slave(i) = r1 {
            p.read_done(i, 10.0);
            assert_eq!(p.route(OpClass::Read), Route::Slave(i));
        }
    }

    #[test]
    fn latency_aware_prefers_fast_slave() {
        let mut p = Proxy::new(2, Box::new(LatencyAware::default()));
        // Warm EWMAs: slave 0 fast (20ms), slave 1 slow (350ms, "different
        // region").
        let Route::Slave(a) = p.route(OpClass::Read) else {
            panic!()
        };
        p.read_done(a, if a == 0 { 20.0 } else { 350.0 });
        let Route::Slave(b) = p.route(OpClass::Read) else {
            panic!()
        };
        p.read_done(b, if b == 0 { 20.0 } else { 350.0 });
        // Now both have data; the fast one must win repeatedly when idle.
        let mut wins = [0u32; 2];
        for _ in 0..10 {
            let Route::Slave(i) = p.route(OpClass::Read) else {
                panic!()
            };
            wins[i] += 1;
            p.read_done(i, if i == 0 { 20.0 } else { 350.0 });
        }
        assert!(wins[0] > wins[1], "fast slave preferred: {wins:?}");
    }

    #[test]
    fn latency_aware_sheds_to_idle_slow_slave_under_pressure() {
        let mut p = Proxy::new(2, Box::new(LatencyAware::default()));
        // Prime EWMAs.
        for i in 0..2 {
            p.slaves_mut_for_test(i, if i == 0 { 20.0 } else { 60.0 });
        }
        // Pile outstanding reads onto the fast slave without completion;
        // eventually 20 * (k+1) > 60 * 1 and the slow slave is chosen.
        let mut saw_slow = false;
        for _ in 0..8 {
            if let Route::Slave(1) = p.route(OpClass::Read) {
                saw_slow = true;
                break;
            }
        }
        assert!(saw_slow, "queue pressure shifts load to the slower slave");
    }

    #[test]
    fn random_covers_all_slaves() {
        let mut p = Proxy::new(4, Box::new(RandomPick::new(Rng::new(5))));
        let mut seen = [false; 4];
        for _ in 0..200 {
            if let Route::Slave(i) = p.route(OpClass::Read) {
                seen[i] = true;
                p.read_done(i, 1.0);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn add_slave_joins_after_going_alive() {
        let mut p = Proxy::new(1, Box::new(RoundRobin::default()));
        let s = p.add_slave();
        assert_eq!(s, 1);
        // Still syncing: no reads reach it.
        for _ in 0..4 {
            assert_eq!(p.route(OpClass::Read), Route::Slave(0));
        }
        p.set_alive(s, true);
        let picks: Vec<Route> = (0..4).map(|_| p.route(OpClass::Read)).collect();
        assert!(picks.contains(&Route::Slave(1)), "new slave takes reads");
    }

    /// Regression: `min_by(_key)` tie-breaking always picked slave 0, so at
    /// cold start (and whenever outstanding counts synchronize) every read
    /// herded onto the lowest index. With the rotating tie-break, N reads
    /// over idle, equal slaves must spread evenly.
    #[test]
    fn least_outstanding_ties_spread_evenly() {
        let mut p = Proxy::new(4, Box::new(LeastOutstanding::default()));
        for _ in 0..20 {
            let Route::Slave(i) = p.route(OpClass::Read) else {
                panic!("a slave must serve the read")
            };
            // Complete immediately: every pick sees all-idle, all-tied state.
            p.read_done(i, 5.0);
        }
        assert_eq!(p.reads_per_slave(), &[5, 5, 5, 5]);
    }

    /// Same regression for the latency-aware policy: identical EWMAs and
    /// identical queues are an exact tie and must rotate, not herd.
    #[test]
    fn latency_aware_ties_spread_evenly() {
        let mut p = Proxy::new(4, Box::new(LatencyAware::default()));
        for _ in 0..20 {
            let Route::Slave(i) = p.route(OpClass::Read) else {
                panic!("a slave must serve the read")
            };
            // Same latency everywhere keeps the EWMAs exactly equal.
            p.read_done(i, 12.0);
        }
        assert_eq!(p.reads_per_slave(), &[5, 5, 5, 5]);
    }

    #[test]
    fn rotating_tie_break_skips_dead_slaves() {
        let mut p = Proxy::new(3, Box::new(LeastOutstanding::default()));
        p.set_alive(1, false);
        for _ in 0..10 {
            let Route::Slave(i) = p.route(OpClass::Read) else {
                panic!("live slaves exist")
            };
            assert_ne!(i, 1, "dead slave must not serve");
            p.read_done(i, 5.0);
        }
        assert_eq!(p.reads_per_slave()[0], 5);
        assert_eq!(p.reads_per_slave()[2], 5);
    }

    /// Regression: a genuine 0.0 ms sample used to match the "uninitialized"
    /// sentinel and *reset* the EWMA to the next sample instead of smoothing.
    #[test]
    fn ewma_zero_sample_is_smoothed_not_first_contact() {
        let mut p = Proxy::new(1, Box::new(RoundRobin::default()));
        // Warm the EWMA to 10.0 ms.
        p.route(OpClass::Read);
        p.read_done(0, 10.0);
        assert_eq!(p.slave_status(0).ewma_latency_ms, 10.0);
        // A 0.0 ms sample must be blended (0.2·0 + 0.8·10 = 8), not adopted.
        p.route(OpClass::Read);
        p.read_done(0, 0.0);
        let e = p.slave_status(0).ewma_latency_ms;
        assert!((e - 8.0).abs() < 1e-12, "0.0 smoothed into EWMA, got {e}");
        // And the *next* sample must smooth against 8, not re-initialize.
        p.route(OpClass::Read);
        p.read_done(0, 10.0);
        let e = p.slave_status(0).ewma_latency_ms;
        assert!((e - 8.4).abs() < 1e-12, "EWMA continued, got {e}");
        assert_eq!(p.slave_status(0).ewma_samples, 3);
    }

    #[test]
    fn ewma_first_sample_can_be_zero() {
        let mut p = Proxy::new(1, Box::new(RoundRobin::default()));
        p.route(OpClass::Read);
        p.read_done(0, 0.0);
        assert_eq!(p.slave_status(0).ewma_latency_ms, 0.0);
        assert_eq!(p.slave_status(0).ewma_samples, 1);
        p.route(OpClass::Read);
        p.read_done(0, 10.0);
        let e = p.slave_status(0).ewma_latency_ms;
        assert!((e - 2.0).abs() < 1e-12, "smoothed from 0.0, got {e}");
    }

    /// Regression (shard fan-out herding): N proxies with default-cursor
    /// balancers all make the *same* first pick, so a scatter-gather read
    /// fanned out across N shard trees lands every leg on slave index 0 of
    /// its tree — the same class of bug as the old `min_by` slave-0 bias,
    /// one level up. Staggered cursors must spread the cold-start picks.
    #[test]
    fn staggered_cursors_decorrelate_first_picks_across_proxies() {
        fn make(kind: usize, cursor: usize) -> Box<dyn Balancer> {
            match kind {
                0 => Box::new(RoundRobin::starting_at(cursor)),
                1 => Box::new(LeastOutstanding::starting_at(cursor)),
                _ => Box::new(LatencyAware::starting_at(cursor)),
            }
        }
        for kind in 0..3 {
            let n_shards = 4;
            let n_slaves = 4;
            let mut first_picks = Vec::new();
            for shard in 0..n_shards {
                let mut p = Proxy::new(n_slaves, make(kind, shard));
                let Route::Slave(i) = p.route(OpClass::Read) else {
                    panic!("live slaves exist")
                };
                first_picks.push(i);
            }
            // Each tree's first (cold-start, all-tied) pick differs.
            let distinct: std::collections::BTreeSet<usize> = first_picks.iter().copied().collect();
            assert_eq!(
                distinct.len(),
                n_shards,
                "cold-start picks herd: {first_picks:?}"
            );
        }
    }

    /// The cursor is taken modulo the slave count, so shard counts larger
    /// than the slave count wrap instead of panicking or pinning.
    #[test]
    fn starting_cursor_wraps_past_slave_count() {
        let mut p = Proxy::new(2, Box::new(RoundRobin::starting_at(7)));
        assert_eq!(p.route(OpClass::Read), Route::Slave(1));
        assert_eq!(p.route(OpClass::Read), Route::Slave(0));
        let mut p = Proxy::new(2, Box::new(LeastOutstanding::starting_at(5)));
        let Route::Slave(i) = p.route(OpClass::Read) else {
            panic!()
        };
        assert_eq!(i, 1, "cursor 5 over 2 slaves starts at 1");
    }

    #[test]
    fn ewma_converges_toward_latency() {
        let mut p = Proxy::new(1, Box::new(RoundRobin::default()));
        for _ in 0..60 {
            p.route(OpClass::Read);
            p.read_done(0, 100.0);
        }
        let e = p.slave_status(0).ewma_latency_ms;
        assert!((e - 100.0).abs() < 1.0, "ewma {e}");
    }

    impl Proxy {
        /// Test helper: set a slave's EWMA directly (as if one sample seen).
        fn slaves_mut_for_test(&mut self, i: usize, ewma: f64) {
            self.slaves[i].ewma_latency_ms = ewma;
            self.slaves[i].ewma_samples = 1;
        }
    }
}
