//! # amdb-proxy — read/write splitting and slave load balancing
//!
//! The paper's customized Cloudstone interposes a proxy (MySQL Connector/J's
//! replication driver) that "works as a load balancer among the available
//! database replicas where all write operations are sent to the master while
//! all read operations are distributed among slaves" (§III-A).
//!
//! This crate implements that router with pluggable balancing policies. The
//! paper's conclusion suggests geographic replication is viable "as long as
//! workload characteristics can be well managed (e.g. having a smart load
//! balancer which is able of balancing the operations based on estimated
//! processing time)" — the [`LatencyAware`] policy implements exactly that
//! suggestion and is compared against the baselines in ablation A2.

use amdb_sim::Rng;

/// Statement class for routing purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    Read,
    Write,
}

/// Routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    Master,
    /// Index into the slave list.
    Slave(usize),
}

/// Live per-slave state the balancer can consult.
#[derive(Debug, Clone)]
pub struct SlaveStatus {
    /// Reads currently in flight to this slave.
    pub outstanding: u32,
    /// Exponentially-weighted moving average of observed read latency (ms).
    pub ewma_latency_ms: f64,
    /// False when the slave is marked down.
    pub alive: bool,
}

impl Default for SlaveStatus {
    fn default() -> Self {
        Self {
            outstanding: 0,
            ewma_latency_ms: 0.0,
            alive: true,
        }
    }
}

/// A slave-selection policy.
pub trait Balancer {
    /// Pick a slave index among `slaves`; `None` when none is eligible
    /// (caller then falls back to the master, as Connector/J does).
    fn pick(&mut self, slaves: &[SlaveStatus]) -> Option<usize>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Round-robin over live slaves (Connector/J's default).
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Balancer for RoundRobin {
    fn pick(&mut self, slaves: &[SlaveStatus]) -> Option<usize> {
        if slaves.is_empty() {
            return None;
        }
        for off in 0..slaves.len() {
            let i = (self.next + off) % slaves.len();
            if slaves[i].alive {
                self.next = i + 1;
                return Some(i);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Uniform random over live slaves.
#[derive(Debug)]
pub struct RandomPick {
    rng: Rng,
}

impl RandomPick {
    /// Policy with its own RNG stream.
    pub fn new(rng: Rng) -> Self {
        Self { rng }
    }
}

impl Balancer for RandomPick {
    fn pick(&mut self, slaves: &[SlaveStatus]) -> Option<usize> {
        let live: Vec<usize> = (0..slaves.len()).filter(|&i| slaves[i].alive).collect();
        if live.is_empty() {
            return None;
        }
        Some(live[self.rng.below(live.len() as u64) as usize])
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Fewest outstanding reads wins (join-the-shortest-queue).
#[derive(Debug, Default)]
pub struct LeastOutstanding;

impl Balancer for LeastOutstanding {
    fn pick(&mut self, slaves: &[SlaveStatus]) -> Option<usize> {
        slaves
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .min_by_key(|(_, s)| s.outstanding)
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "least-outstanding"
    }
}

/// The paper's "smart load balancer ... based on estimated processing time":
/// picks the slave minimizing `ewma_latency × (outstanding + 1)` — an
/// estimate of the completion time of the next read if sent there. Slower or
/// farther slaves naturally receive proportionally less traffic.
#[derive(Debug, Default)]
pub struct LatencyAware;

impl Balancer for LatencyAware {
    fn pick(&mut self, slaves: &[SlaveStatus]) -> Option<usize> {
        slaves
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .min_by(|(_, a), (_, b)| {
                let ka = a.ewma_latency_ms.max(0.1) * (a.outstanding + 1) as f64;
                let kb = b.ewma_latency_ms.max(0.1) * (b.outstanding + 1) as f64;
                ka.partial_cmp(&kb).expect("latencies are finite")
            })
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "latency-aware"
    }
}

/// EWMA smoothing factor for latency feedback.
const EWMA_ALPHA: f64 = 0.2;

/// The read/write splitting proxy.
pub struct Proxy {
    balancer: Box<dyn Balancer>,
    slaves: Vec<SlaveStatus>,
    reads_routed: Vec<u64>,
    writes_routed: u64,
    reads_fallback_master: u64,
}

impl Proxy {
    /// Proxy over `n_slaves` replicas with the given policy.
    pub fn new(n_slaves: usize, balancer: Box<dyn Balancer>) -> Self {
        Self {
            balancer,
            slaves: vec![SlaveStatus::default(); n_slaves],
            reads_routed: vec![0; n_slaves],
            writes_routed: 0,
            reads_fallback_master: 0,
        }
    }

    /// Number of slaves behind the proxy.
    pub fn n_slaves(&self) -> usize {
        self.slaves.len()
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.balancer.name()
    }

    /// Route one operation. Reads go to a slave chosen by the policy (master
    /// as a last resort); writes always go to the master.
    pub fn route(&mut self, class: OpClass) -> Route {
        match class {
            OpClass::Write => {
                self.writes_routed += 1;
                Route::Master
            }
            OpClass::Read => match self.balancer.pick(&self.slaves) {
                Some(i) => {
                    self.reads_routed[i] += 1;
                    self.slaves[i].outstanding += 1;
                    Route::Slave(i)
                }
                None => {
                    self.reads_fallback_master += 1;
                    Route::Master
                }
            },
        }
    }

    /// Report a read completion so outstanding counts and EWMA latencies stay
    /// current.
    pub fn read_done(&mut self, slave: usize, latency_ms: f64) {
        let s = &mut self.slaves[slave];
        debug_assert!(s.outstanding > 0, "read_done without route");
        s.outstanding = s.outstanding.saturating_sub(1);
        s.ewma_latency_ms = if s.ewma_latency_ms == 0.0 {
            latency_ms
        } else {
            EWMA_ALPHA * latency_ms + (1.0 - EWMA_ALPHA) * s.ewma_latency_ms
        };
    }

    /// Mark a slave up/down.
    pub fn set_alive(&mut self, slave: usize, alive: bool) {
        self.slaves[slave].alive = alive;
    }

    /// Attach a new slave (application-managed elasticity: a freshly
    /// launched replica joins the rotation). It starts *down*; call
    /// [`Self::set_alive`] once its initial sync completes. Returns its
    /// index.
    pub fn add_slave(&mut self) -> usize {
        self.slaves.push(SlaveStatus {
            alive: false,
            ..SlaveStatus::default()
        });
        self.reads_routed.push(0);
        self.slaves.len() - 1
    }

    /// Current status snapshot of a slave.
    pub fn slave_status(&self, slave: usize) -> &SlaveStatus {
        &self.slaves[slave]
    }

    /// Reads routed per slave.
    pub fn reads_per_slave(&self) -> &[u64] {
        &self.reads_routed
    }

    /// Total writes routed (all to the master).
    pub fn writes_routed(&self) -> u64 {
        self.writes_routed
    }

    /// Reads that fell back to the master because no slave was eligible.
    pub fn reads_fallback_master(&self) -> u64 {
        self.reads_fallback_master
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_always_master() {
        let mut p = Proxy::new(3, Box::new(RoundRobin::default()));
        for _ in 0..10 {
            assert_eq!(p.route(OpClass::Write), Route::Master);
        }
        assert_eq!(p.writes_routed(), 10);
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = Proxy::new(3, Box::new(RoundRobin::default()));
        let picks: Vec<Route> = (0..6).map(|_| p.route(OpClass::Read)).collect();
        assert_eq!(
            picks,
            vec![
                Route::Slave(0),
                Route::Slave(1),
                Route::Slave(2),
                Route::Slave(0),
                Route::Slave(1),
                Route::Slave(2)
            ]
        );
        assert_eq!(p.reads_per_slave(), &[2, 2, 2]);
    }

    #[test]
    fn round_robin_skips_dead() {
        let mut p = Proxy::new(3, Box::new(RoundRobin::default()));
        p.set_alive(1, false);
        let picks: Vec<Route> = (0..4).map(|_| p.route(OpClass::Read)).collect();
        assert!(picks.iter().all(|r| *r != Route::Slave(1)));
    }

    #[test]
    fn no_slaves_falls_back_to_master() {
        let mut p = Proxy::new(0, Box::new(RoundRobin::default()));
        assert_eq!(p.route(OpClass::Read), Route::Master);
        assert_eq!(p.reads_fallback_master(), 1);
        let mut p = Proxy::new(2, Box::new(LeastOutstanding));
        p.set_alive(0, false);
        p.set_alive(1, false);
        assert_eq!(p.route(OpClass::Read), Route::Master);
    }

    #[test]
    fn least_outstanding_balances_inflight() {
        let mut p = Proxy::new(2, Box::new(LeastOutstanding));
        let r1 = p.route(OpClass::Read);
        let r2 = p.route(OpClass::Read);
        assert_ne!(r1, r2, "second read avoids the busy slave");
        // Complete slave 0's read: next read goes there.
        if let Route::Slave(i) = r1 {
            p.read_done(i, 10.0);
            assert_eq!(p.route(OpClass::Read), Route::Slave(i));
        }
    }

    #[test]
    fn latency_aware_prefers_fast_slave() {
        let mut p = Proxy::new(2, Box::new(LatencyAware));
        // Warm EWMAs: slave 0 fast (20ms), slave 1 slow (350ms, "different
        // region").
        let Route::Slave(a) = p.route(OpClass::Read) else {
            panic!()
        };
        p.read_done(a, if a == 0 { 20.0 } else { 350.0 });
        let Route::Slave(b) = p.route(OpClass::Read) else {
            panic!()
        };
        p.read_done(b, if b == 0 { 20.0 } else { 350.0 });
        // Now both have data; the fast one must win repeatedly when idle.
        let mut wins = [0u32; 2];
        for _ in 0..10 {
            let Route::Slave(i) = p.route(OpClass::Read) else {
                panic!()
            };
            wins[i] += 1;
            p.read_done(i, if i == 0 { 20.0 } else { 350.0 });
        }
        assert!(wins[0] > wins[1], "fast slave preferred: {wins:?}");
    }

    #[test]
    fn latency_aware_sheds_to_idle_slow_slave_under_pressure() {
        let mut p = Proxy::new(2, Box::new(LatencyAware));
        // Prime EWMAs.
        for i in 0..2 {
            p.slaves_mut_for_test(i, if i == 0 { 20.0 } else { 60.0 });
        }
        // Pile outstanding reads onto the fast slave without completion;
        // eventually 20 * (k+1) > 60 * 1 and the slow slave is chosen.
        let mut saw_slow = false;
        for _ in 0..8 {
            if let Route::Slave(1) = p.route(OpClass::Read) {
                saw_slow = true;
                break;
            }
        }
        assert!(saw_slow, "queue pressure shifts load to the slower slave");
    }

    #[test]
    fn random_covers_all_slaves() {
        let mut p = Proxy::new(4, Box::new(RandomPick::new(Rng::new(5))));
        let mut seen = [false; 4];
        for _ in 0..200 {
            if let Route::Slave(i) = p.route(OpClass::Read) {
                seen[i] = true;
                p.read_done(i, 1.0);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn add_slave_joins_after_going_alive() {
        let mut p = Proxy::new(1, Box::new(RoundRobin::default()));
        let s = p.add_slave();
        assert_eq!(s, 1);
        // Still syncing: no reads reach it.
        for _ in 0..4 {
            assert_eq!(p.route(OpClass::Read), Route::Slave(0));
        }
        p.set_alive(s, true);
        let picks: Vec<Route> = (0..4).map(|_| p.route(OpClass::Read)).collect();
        assert!(picks.contains(&Route::Slave(1)), "new slave takes reads");
    }

    #[test]
    fn ewma_converges_toward_latency() {
        let mut p = Proxy::new(1, Box::new(RoundRobin::default()));
        for _ in 0..60 {
            p.route(OpClass::Read);
            p.read_done(0, 100.0);
        }
        let e = p.slave_status(0).ewma_latency_ms;
        assert!((e - 100.0).abs() < 1.0, "ewma {e}");
    }

    impl Proxy {
        /// Test helper: set a slave's EWMA directly.
        fn slaves_mut_for_test(&mut self, i: usize, ewma: f64) {
            self.slaves[i].ewma_latency_ms = ewma;
        }
    }
}
