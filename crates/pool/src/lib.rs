//! # amdb-pool — database connection pooling (DBCP model)
//!
//! The paper's customized Cloudstone places a connection pool (Apache DBCP)
//! between the emulated users and the database tier so that "users reuse the
//! connections that have been released by other users ... to save the
//! overhead of creating a new connection for each operation" (§III-A).
//!
//! Two implementations are provided:
//!
//! * [`SimPool`] — a deterministic, event-loop-friendly pool used inside the
//!   discrete-event simulation: acquisition either succeeds immediately or
//!   returns a ticket that the caller parks until a release wakes it (the
//!   DES harness resumes the waiter).
//! * [`Pool`] — a thread-safe object pool with RAII guards for ordinary
//!   (non-simulated) library use, demonstrated by the examples.

use amdb_sim::SimTime;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Pool sizing configuration (DBCP-style).
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum connections checked out simultaneously.
    pub max_active: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        // DBCP's classic default of 8 is far too small for hundreds of
        // emulated users; the paper sized the pool to the workload. We
        // default generously and let experiments set it explicitly.
        Self { max_active: 512 }
    }
}

/// A waiter ticket handed out when the pool is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(pub u64);

/// Outcome of a [`SimPool::acquire`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// A connection was checked out immediately.
    Ready,
    /// Pool exhausted; the caller is queued and will be woken FIFO.
    Queued(Ticket),
}

/// Deterministic pool for the simulation: pure accounting, no real sockets.
#[derive(Debug)]
pub struct SimPool {
    cfg: PoolConfig,
    active: usize,
    waiters: VecDeque<Ticket>,
    next_ticket: u64,
    // statistics
    total_acquired: u64,
    total_waited: u64,
    peak_active: usize,
    peak_waiting: usize,
}

impl SimPool {
    /// Create a pool.
    pub fn new(cfg: PoolConfig) -> Self {
        Self {
            cfg,
            active: 0,
            waiters: VecDeque::new(),
            next_ticket: 0,
            total_acquired: 0,
            total_waited: 0,
            peak_active: 0,
            peak_waiting: 0,
        }
    }

    /// Connections currently checked out.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Callers currently parked.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Total successful checkouts so far.
    pub fn total_acquired(&self) -> u64 {
        self.total_acquired
    }

    /// Total acquisitions that had to wait.
    pub fn total_waited(&self) -> u64 {
        self.total_waited
    }

    /// High-water marks `(active, waiting)`.
    pub fn peaks(&self) -> (usize, usize) {
        (self.peak_active, self.peak_waiting)
    }

    /// Try to check out a connection at `_now`; FIFO-queues on exhaustion.
    pub fn acquire(&mut self, _now: SimTime) -> Acquire {
        if self.active < self.cfg.max_active && self.waiters.is_empty() {
            self.active += 1;
            self.peak_active = self.peak_active.max(self.active);
            self.total_acquired += 1;
            Acquire::Ready
        } else {
            let t = Ticket(self.next_ticket);
            self.next_ticket += 1;
            self.waiters.push_back(t);
            self.peak_waiting = self.peak_waiting.max(self.waiters.len());
            self.total_waited += 1;
            Acquire::Queued(t)
        }
    }

    /// Return a connection. If a waiter exists, the connection is handed to
    /// it directly and its ticket is returned so the harness can resume it.
    pub fn release(&mut self, _now: SimTime) -> Option<Ticket> {
        debug_assert!(self.active > 0, "release without acquire");
        match self.waiters.pop_front() {
            Some(t) => {
                // Connection transfers to the waiter: `active` is unchanged.
                self.total_acquired += 1;
                Some(t)
            }
            None => {
                self.active -= 1;
                None
            }
        }
    }

    /// Remove a parked waiter (e.g. client timeout/abandon). Returns whether
    /// the ticket was still queued.
    pub fn cancel(&mut self, ticket: Ticket) -> bool {
        let before = self.waiters.len();
        self.waiters.retain(|&t| t != ticket);
        before != self.waiters.len()
    }
}

// ---------------------------------------------------------------------------
// Thread-safe object pool (for non-simulated, real-world style use)
// ---------------------------------------------------------------------------

struct PoolInner<T> {
    idle: Mutex<Vec<T>>,
    cond: Condvar,
    max_active: usize,
    outstanding: Mutex<usize>,
}

/// A thread-safe, blocking object pool with RAII checkout guards.
///
/// ```
/// use amdb_pool::Pool;
/// let pool = Pool::new(2, || String::from("conn"));
/// let a = pool.get();
/// let b = pool.get();
/// assert_eq!(pool.outstanding(), 2);
/// drop(a);
/// assert_eq!(pool.outstanding(), 1);
/// drop(b);
/// ```
pub struct Pool<T: Send + 'static> {
    inner: Arc<PoolInner<T>>,
    factory: Arc<dyn Fn() -> T + Send + Sync>,
}

impl<T: Send + 'static> Clone for Pool<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            factory: Arc::clone(&self.factory),
        }
    }
}

impl<T: Send + 'static> Pool<T> {
    /// Create a pool that lazily builds up to `max_active` objects with
    /// `factory`.
    pub fn new(max_active: usize, factory: impl Fn() -> T + Send + Sync + 'static) -> Self {
        assert!(max_active > 0, "pool must allow at least one object");
        Self {
            inner: Arc::new(PoolInner {
                idle: Mutex::new(Vec::new()),
                cond: Condvar::new(),
                max_active,
                outstanding: Mutex::new(0),
            }),
            factory: Arc::new(factory),
        }
    }

    /// Check out an object, blocking until one is available.
    pub fn get(&self) -> Pooled<T> {
        loop {
            {
                let mut idle = self.inner.idle.lock().expect("pool lock poisoned");
                if let Some(obj) = idle.pop() {
                    *self.inner.outstanding.lock().expect("pool lock poisoned") += 1;
                    return Pooled {
                        obj: Some(obj),
                        pool: Arc::clone(&self.inner),
                    };
                }
            }
            {
                let mut out = self.inner.outstanding.lock().expect("pool lock poisoned");
                if *out < self.inner.max_active {
                    *out += 1;
                    drop(out);
                    let obj = (self.factory)();
                    return Pooled {
                        obj: Some(obj),
                        pool: Arc::clone(&self.inner),
                    };
                }
                // Wait for a return (spurious wakeups just re-run the loop).
                let _out = self.inner.cond.wait(out).expect("pool lock poisoned");
            }
        }
    }

    /// Objects currently checked out.
    pub fn outstanding(&self) -> usize {
        *self.inner.outstanding.lock().expect("pool lock poisoned")
    }
}

/// RAII guard: derefs to the pooled object and returns it on drop.
pub struct Pooled<T: Send + 'static> {
    obj: Option<T>,
    pool: Arc<PoolInner<T>>,
}

impl<T: Send + 'static> std::ops::Deref for Pooled<T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.obj.as_ref().expect("present until drop")
    }
}

impl<T: Send + 'static> std::ops::DerefMut for Pooled<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.obj.as_mut().expect("present until drop")
    }
}

impl<T: Send + 'static> Drop for Pooled<T> {
    fn drop(&mut self) {
        if let Some(obj) = self.obj.take() {
            self.pool.idle.lock().expect("pool lock poisoned").push(obj);
            *self.pool.outstanding.lock().expect("pool lock poisoned") -= 1;
            self.pool.cond.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn acquire_up_to_max_then_queue() {
        let mut p = SimPool::new(PoolConfig { max_active: 2 });
        assert_eq!(p.acquire(t0()), Acquire::Ready);
        assert_eq!(p.acquire(t0()), Acquire::Ready);
        let q = p.acquire(t0());
        assert!(matches!(q, Acquire::Queued(_)));
        assert_eq!(p.active(), 2);
        assert_eq!(p.waiting(), 1);
    }

    #[test]
    fn release_hands_connection_to_waiter_fifo() {
        let mut p = SimPool::new(PoolConfig { max_active: 1 });
        assert_eq!(p.acquire(t0()), Acquire::Ready);
        let Acquire::Queued(t1) = p.acquire(t0()) else {
            panic!()
        };
        let Acquire::Queued(t2) = p.acquire(t0()) else {
            panic!()
        };
        assert_eq!(p.release(t0()), Some(t1), "FIFO order");
        assert_eq!(p.active(), 1, "connection transferred, not freed");
        assert_eq!(p.release(t0()), Some(t2));
        assert_eq!(p.release(t0()), None);
        assert_eq!(p.active(), 0);
    }

    #[test]
    fn cancel_removes_waiter() {
        let mut p = SimPool::new(PoolConfig { max_active: 1 });
        p.acquire(t0());
        let Acquire::Queued(t) = p.acquire(t0()) else {
            panic!()
        };
        assert!(p.cancel(t));
        assert!(!p.cancel(t), "second cancel is a no-op");
        assert_eq!(p.release(t0()), None, "no waiter left to wake");
    }

    #[test]
    fn accounting_invariant_under_churn() {
        let mut p = SimPool::new(PoolConfig { max_active: 4 });
        let mut queued = VecDeque::new();
        let mut held = 0usize;
        for i in 0..1000u64 {
            if i % 3 != 0 {
                match p.acquire(t0()) {
                    Acquire::Ready => held += 1,
                    Acquire::Queued(t) => queued.push_back(t),
                }
            } else if held > 0 {
                if let Some(woken) = p.release(t0()) {
                    assert_eq!(queued.pop_front(), Some(woken));
                    // the woken waiter now holds the connection: held stays
                } else {
                    held -= 1;
                }
            }
            assert!(p.active() <= 4, "never exceeds max_active");
            assert_eq!(p.waiting(), queued.len());
        }
        let (peak_active, _) = p.peaks();
        assert!(peak_active <= 4);
    }

    #[test]
    fn thread_safe_pool_blocks_and_recycles() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;
        let built = StdArc::new(AtomicUsize::new(0));
        let b2 = StdArc::clone(&built);
        let pool = Pool::new(2, move || {
            b2.fetch_add(1, Ordering::SeqCst);
            42u32
        });
        let a = pool.get();
        let b = pool.get();
        assert_eq!(*a, 42);
        assert_eq!(built.load(Ordering::SeqCst), 2);
        drop(a);
        let c = pool.get();
        assert_eq!(*c, 42);
        assert_eq!(built.load(Ordering::SeqCst), 2, "recycled, not rebuilt");
        drop(b);
        drop(c);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn thread_safe_pool_cross_thread() {
        let pool = Pool::new(1, || 7u8);
        let guard = pool.get();
        let p2 = pool.clone();
        let h = std::thread::spawn(move || {
            let g = p2.get(); // blocks until main thread drops
            *g
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(guard);
        assert_eq!(h.join().unwrap(), 7);
    }
}
