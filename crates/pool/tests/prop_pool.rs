//! Property tests for the simulation connection pool: accounting invariants
//! under arbitrary acquire/release/cancel sequences.

use amdb_pool::{Acquire, PoolConfig, SimPool, Ticket};
use amdb_sim::SimTime;
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
enum Act {
    Acquire,
    Release,
    CancelOldest,
}

fn arb_act() -> impl Strategy<Value = Act> {
    prop_oneof![
        3 => Just(Act::Acquire),
        2 => Just(Act::Release),
        1 => Just(Act::CancelOldest),
    ]
}

proptest! {
    #[test]
    fn accounting_invariants(
        max_active in 1usize..16,
        acts in prop::collection::vec(arb_act(), 0..300),
    ) {
        let mut pool = SimPool::new(PoolConfig { max_active });
        let t = SimTime::ZERO;
        // Model state.
        let mut held = 0usize;                 // connections we believe are out
        let mut queue: VecDeque<Ticket> = VecDeque::new();

        for act in acts {
            match act {
                Act::Acquire => match pool.acquire(t) {
                    Acquire::Ready => {
                        held += 1;
                        prop_assert!(held <= max_active, "never exceed max_active");
                        prop_assert!(queue.is_empty(),
                            "immediate grant only when no one is waiting");
                    }
                    Acquire::Queued(ticket) => {
                        queue.push_back(ticket);
                    }
                },
                Act::Release => {
                    if held == 0 { continue; }
                    match pool.release(t) {
                        Some(woken) => {
                            // FIFO handoff to the oldest waiter; held count
                            // unchanged (the connection moved, not freed).
                            let expect = queue.pop_front();
                            prop_assert_eq!(Some(woken), expect, "FIFO wakeups");
                        }
                        None => {
                            prop_assert!(queue.is_empty());
                            held -= 1;
                        }
                    }
                }
                Act::CancelOldest => {
                    if let Some(ticket) = queue.pop_front() {
                        prop_assert!(pool.cancel(ticket), "queued ticket cancels");
                        prop_assert!(!pool.cancel(ticket), "double-cancel is a no-op");
                    }
                }
            }
            prop_assert_eq!(pool.active(), held, "active tracks model");
            prop_assert_eq!(pool.waiting(), queue.len(), "waiting tracks model");
            let (peak_active, _) = pool.peaks();
            prop_assert!(peak_active <= max_active);
        }
    }

    /// Draining all holders always leaves a clean pool.
    #[test]
    fn full_drain_resets(max_active in 1usize..8, n in 0usize..40) {
        let mut pool = SimPool::new(PoolConfig { max_active });
        let t = SimTime::ZERO;
        let mut held = 0usize;
        let mut queued = 0usize;
        for _ in 0..n {
            match pool.acquire(t) {
                Acquire::Ready => held += 1,
                Acquire::Queued(_) => queued += 1,
            }
        }
        // Release everything; waiters become holders and are then released.
        let mut remaining = held + queued;
        while remaining > 0 && pool.active() > 0 {
            if pool.release(t).is_none() {
                // freed outright
            }
            remaining -= 1;
        }
        prop_assert_eq!(pool.active(), 0);
        prop_assert_eq!(pool.waiting(), 0);
    }
}
