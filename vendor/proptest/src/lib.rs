//! Minimal, dependency-free subset of the `proptest` crate API.
//!
//! Vendored so the workspace builds and tests with `--offline` on machines
//! with no registry access. The subset covers what this repo's property
//! tests use: the `proptest!` macro, `prop_assert*`, `prop_oneof!`, `Just`,
//! `any`, numeric range strategies, regex-lite string strategies,
//! `prop_map` / `prop_recursive`, tuple strategies, `prop::collection`,
//! `prop::num::f64::NORMAL`, and `prop::sample::Index`.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. A failing case panics immediately with the generated inputs
//! in the message. Generation is fully deterministic per test (seeded from
//! the test's module path and name), so failures reproduce across runs.

pub mod test_runner {
    /// Deterministic split-mix style PRNG driving all generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from raw state.
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seed deterministically from a test's full name.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::new(h)
        }

        /// Next raw 64-bit value (splitmix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`. `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Modulo bias is irrelevant for test-input generation.
            self.next_u64() % n
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed property within one generated case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build from a rendered assertion message.
        pub fn fail(msg: String) -> Self {
            Self(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking: `generate`
    /// produces a final value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: std::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive strategy: `self` generates leaves, `recurse` wraps an
        /// inner strategy into branches, up to `depth` levels deep. The
        /// `_desired_size` / `_expected_branch_size` hints are accepted for
        /// signature compatibility and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut tower = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(tower).boxed();
                let shortcut = leaf.clone();
                // At each level, sometimes cut straight to a leaf so trees
                // of every depth up to `depth` appear.
                tower = BoxedStrategy::from_fn(move |rng| {
                    if rng.below(4) == 0 {
                        shortcut.generate(rng)
                    } else {
                        branch.generate(rng)
                    }
                });
            }
            tower
        }

        /// Erase the concrete type behind a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::from_fn(move |rng| self.generate(rng))
        }
    }

    /// Cloneable type-erased strategy handle.
    pub struct BoxedStrategy<T> {
        generate: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        /// Wrap a generation function.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            Self {
                generate: Rc::new(f),
            }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self {
                generate: Rc::clone(&self.generate),
            }
        }
    }

    impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.generate)(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: std::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between strategies; built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms. Weights must not all be 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs at least one positive weight"
            );
            Self { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Self {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T: std::fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (w, strat) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return strat.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum covered above")
        }
    }

    // ---- numeric ranges -------------------------------------------------

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = if span > u64::MAX as u128 {
                        // Full-width i64/u64 span: take raw bits.
                        rng.next_u64() as u128
                    } else {
                        u128::from(rng.below(span as u64))
                    };
                    (self.start as i128 + off as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    // ---- tuples ---------------------------------------------------------

    macro_rules! tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

    // ---- regex-lite string strategies ----------------------------------

    #[derive(Debug, Clone)]
    enum Atom {
        /// `.` — any printable ASCII character.
        Any,
        /// `[a-z0-9_]`-style class, flattened to candidate chars.
        Class(Vec<char>),
        /// A literal character.
        Lit(char),
    }

    #[derive(Debug, Clone)]
    struct Unit {
        atom: Atom,
        min: usize,
        max: usize, // inclusive
    }

    /// Parse the tiny regex subset used as string strategies: literals,
    /// `.`, `[...]` classes (with ranges), and `{m,n}` repetition.
    fn parse_pattern(pat: &str) -> Vec<Unit> {
        let chars: Vec<char> = pat.chars().collect();
        let mut units = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "bad class range {lo}-{hi} in {pat:?}");
                            for c in lo..=hi {
                                set.push(c);
                            }
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pat:?}");
                    i += 1; // ']'
                    assert!(!set.is_empty(), "empty class in {pat:?}");
                    Atom::Class(set)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Optional {m,n} or {n} repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition min"),
                        hi.trim().parse().expect("bad repetition max"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            units.push(Unit { atom, min, max });
        }
        units
    }

    fn generate_pattern(units: &[Unit], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for u in units {
            let n = u.min + rng.below((u.max - u.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(match &u.atom {
                    Atom::Any => char::from(b' ' + rng.below(95) as u8), // 0x20..=0x7E
                    Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
                    Atom::Lit(c) => *c,
                });
            }
        }
        out
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(&parse_pattern(self), rng)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn pattern_shapes() {
            let mut rng = TestRng::new(1);
            for _ in 0..200 {
                let s = "[a-z][a-z0-9_]{0,10}".generate(&mut rng);
                assert!((1..=11).contains(&s.len()));
                assert!(s.chars().next().unwrap().is_ascii_lowercase());
                assert!(s
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

                let t = ".{0,5}".generate(&mut rng);
                assert!(t.len() <= 5);
                assert!(t.chars().all(|c| (' '..='~').contains(&c)));

                let u = "[abc_%]{2,2}".generate(&mut rng);
                assert_eq!(u.chars().count(), 2);
                assert!(u.chars().all(|c| "abc_%".contains(c)));
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy, built by [`any`].
    pub trait Arbitrary: std::fmt::Debug {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for the full domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (upstream: `any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Element-count range for collection strategies (half-open).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.lo < self.hi, "empty size range");
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// `Vec<T>` with a size drawn from `size` and elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `BTreeSet<T>` with a target size drawn from `size`. The element
    /// domain must be large enough to reach the target (upstream retries
    /// too); generation gives up after a generous number of duplicates.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Output of [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(100) + 100 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod num {
    /// Floating-point strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for finite, normal (non-zero, non-subnormal) f64 values
        /// of either sign — upstream's `prop::num::f64::NORMAL`.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF64;

        /// See [`NormalF64`].
        pub const NORMAL: NormalF64 = NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is unknown at generation
    /// time; resolve with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Resolve against a collection of length `len` (> 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs (default 256, or
/// `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config = $cfg;
                let mut __pt_rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __pt_case in 0..__pt_config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);
                    )+
                    let __pt_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __pt_result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __pt_result {
                        panic!(
                            "proptest case {} of {} failed: {}\n    inputs: {}",
                            __pt_case + 1,
                            __pt_config.cases,
                            e,
                            __pt_inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, "assertion failed: {:?} != {:?}", lhs, rhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "{}: {:?} != {:?}",
            format!($($fmt)*),
            lhs,
            rhs
        );
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "assertion failed: {:?} == {:?}", lhs, rhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "{}: {:?} == {:?}",
            format!($($fmt)*),
            lhs,
            rhs
        );
    }};
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}
