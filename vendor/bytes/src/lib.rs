//! Minimal, dependency-free subset of the `bytes` crate API.
//!
//! Vendored so the workspace builds with `--offline` on machines with no
//! registry access. Only the surface used by `amdb-sql`'s binlog codec is
//! implemented: cheaply-cloneable immutable [`Bytes`], growable [`BytesMut`],
//! and the big-endian cursor traits [`Buf`] / [`BufMut`].

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable, immutable contiguous slice of memory.
///
/// Internally an `Arc<[u8]>` plus a `[start, end)` view; `clone` and
/// [`Bytes::slice`] are O(1) and never copy the payload.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Borrow the viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// O(1) sub-view. Panics when the range is out of bounds, matching the
    /// upstream crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

/// Growable byte buffer; freeze into an immutable [`Bytes`] when done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read cursor over a byte source. All multi-byte reads are big-endian,
/// matching the upstream crate's `get_*` defaults.
///
/// Reads panic when the source is exhausted (as upstream does); callers are
/// expected to check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Discard `n` bytes from the front.
    fn advance(&mut self, n: usize);

    /// True when at least one byte is left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.read_array())
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.read_array())
    }

    /// Read a big-endian i64.
    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.read_array())
    }

    /// Read a big-endian f64 (IEEE-754 bit pattern).
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Split off the next `n` bytes as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = Bytes::from(&self.chunk()[..n]);
        self.advance(n);
        out
    }

    #[doc(hidden)]
    fn read_array<const N: usize>(&mut self) -> [u8; N] {
        let mut arr = [0u8; N];
        arr.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        arr
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        // O(1): share the backing allocation instead of copying.
        let out = self.slice(..n);
        self.advance(n);
        out
    }
}

/// Write cursor. All multi-byte writes are big-endian, mirroring [`Buf`].
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian i64.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian f64 (IEEE-754 bit pattern).
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(u64::MAX - 1);
        b.put_i64(-42);
        b.put_f64(2.5);
        b.put_slice(b"tail");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_i64(), -42);
        assert_eq!(r.get_f64(), 2.5);
        assert_eq!(r.copy_to_bytes(4).as_slice(), b"tail");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_is_a_view() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(s.slice(..0).len(), 0);
        assert_eq!(b.len(), 5, "parent untouched");
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }
}
