//! Minimal, dependency-free subset of the `criterion` crate API.
//!
//! Vendored so the workspace builds with `--offline` on machines with no
//! registry access. Implements the surface the repo's benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` (+ `sample_size` / `finish`), `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and `black_box`.
//!
//! Measurement is deliberately simple: a short warm-up, then timed batches
//! until enough wall time has accumulated, reporting mean ns/iteration.
//! There is no statistical analysis, plotting, or result persistence.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. Accepted for API compatibility;
/// the shim runs one setup per iteration regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to benchmark closures; drives the measurement loop.
pub struct Bencher {
    /// Minimum measured wall time before reporting.
    target: Duration,
    /// Mean nanoseconds per iteration, filled in by `iter*`.
    ns_per_iter: f64,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Self {
            target,
            ns_per_iter: 0.0,
        }
    }

    /// Measure `routine` repeatedly until the time budget is met.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let mut batch = 1u64;
        while elapsed < self.target {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut iters = 0u64;
        let mut measured = Duration::ZERO;
        while measured < self.target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.ns_per_iter = measured.as_nanos() as f64 / iters as f64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Benchmark driver. Honours an optional substring filter passed on the
/// command line (`cargo bench -- <filter>`).
pub struct Criterion {
    filter: Option<String>,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes flags like --bench; any non-flag argument filters
        // benchmark names by substring, as upstream does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Self {
            filter,
            target: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    fn wants(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if !self.wants(id) {
            return;
        }
        let mut b = Bencher::new(self.target);
        f(&mut b);
        println!("{id:<48} {:>14}/iter", format_ns(b.ns_per_iter));
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Open a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Scoped benchmark group returned by [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's time-budget measurement
    /// ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream knob; accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
