//! # amdb — Application-Managed Database Replication, simulated
//!
//! Umbrella crate re-exporting the full workspace. See the `amdb-core` crate
//! for the high-level API and `DESIGN.md` for the architecture.

pub use amdb_apply as apply;
pub use amdb_clock as clock;
pub use amdb_cloud as cloud;
pub use amdb_cloudstone as cloudstone;
pub use amdb_consistency as consistency;
pub use amdb_core as core;
pub use amdb_experiments as experiments;
pub use amdb_metrics as metrics;
pub use amdb_net as net;
pub use amdb_obs as obs;
pub use amdb_pool as pool;
pub use amdb_proxy as proxy;
pub use amdb_repl as repl;
pub use amdb_sim as sim;
pub use amdb_sql as sql;
pub use amdb_telemetry as telemetry;
