//! Integration tests over the timed cluster: the paper's qualitative claims
//! must hold at quick fidelity.

use amdb::cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb::core::{run_cluster, ClusterConfig, Placement, RunReport};
use amdb::net::Region;

fn cfg(users: u32, slaves: usize, mix: MixConfig, placement: Placement) -> ClusterConfig {
    ClusterConfig::builder()
        .slaves(slaves)
        .placement(placement)
        .mix(mix)
        .data_size(DataSize { scale: 100 })
        .workload(WorkloadConfig::quick(users))
        .seed(5)
        .build()
}

fn run(users: u32, slaves: usize, mix: MixConfig, placement: Placement) -> RunReport {
    run_cluster(cfg(users, slaves, mix, placement))
}

/// §IV-A: below saturation, adding slaves raises read capacity and thus
/// total throughput at a fixed (high) workload.
#[test]
fn adding_slaves_helps_until_master_saturates() {
    // 150 users offer ~24 ops/s; one slave caps well below that on the
    // 80/20 mix, three slaves nearly lift the cap to the offered load.
    let one = run(150, 1, MixConfig::RW_80_20, Placement::SameZone);
    let three = run(150, 3, MixConfig::RW_80_20, Placement::SameZone);
    assert!(
        three.throughput_ops_s > one.throughput_ops_s * 1.2,
        "3 slaves ({:.1}) must beat 1 slave ({:.1}) while slave-bound",
        three.throughput_ops_s,
        one.throughput_ops_s
    );
}

/// §IV-A: once the master is the bottleneck, further slaves add nothing.
#[test]
fn master_ceiling_caps_scaleout() {
    let a = run(150, 4, MixConfig::RW_50_50, Placement::SameZone);
    let b = run(150, 6, MixConfig::RW_50_50, Placement::SameZone);
    assert!(a.master_utilization > 0.9, "master near saturation");
    let gain = b.throughput_ops_s / a.throughput_ops_s;
    assert!(
        gain < 1.1,
        "6 slaves ({:.1}) should not materially beat 4 ({:.1}) past the master cap",
        b.throughput_ops_s,
        a.throughput_ops_s
    );
}

/// §IV-B: replication delay surges with workload.
#[test]
fn delay_increases_with_workload() {
    let lo = run(20, 1, MixConfig::RW_50_50, Placement::SameZone);
    let hi = run(130, 1, MixConfig::RW_50_50, Placement::SameZone);
    let d_lo = lo.avg_relative_delay_ms().expect("baseline measured");
    let d_hi = hi.avg_relative_delay_ms().expect("loaded measured");
    assert!(
        d_hi > d_lo * 5.0,
        "delay must surge with workload: {d_lo:.1} ms -> {d_hi:.1} ms"
    );
}

/// §IV-B: replication delay decreases as slaves are added (same workload).
#[test]
fn delay_decreases_with_more_slaves() {
    let one = run(120, 1, MixConfig::RW_50_50, Placement::SameZone);
    let four = run(120, 4, MixConfig::RW_50_50, Placement::SameZone);
    let d1 = one.avg_relative_delay_ms().expect("measured");
    let d4 = four.avg_relative_delay_ms().expect("measured");
    assert!(
        d4 < d1,
        "delay falls with slave count: 1 slave {d1:.1} ms vs 4 slaves {d4:.1} ms"
    );
}

/// §IV-A: farther placement costs throughput, and the effect is larger for
/// read-heavier mixes.
#[test]
fn distance_costs_throughput_more_for_read_heavy_mixes() {
    let near_5050 = run(60, 2, MixConfig::RW_50_50, Placement::SameZone);
    let far_5050 = run(
        60,
        2,
        MixConfig::RW_50_50,
        Placement::DifferentRegion(Region::EuWest1),
    );
    let near_8020 = run(60, 2, MixConfig::RW_80_20, Placement::SameZone);
    let far_8020 = run(
        60,
        2,
        MixConfig::RW_80_20,
        Placement::DifferentRegion(Region::EuWest1),
    );
    assert!(
        far_5050.throughput_ops_s < near_5050.throughput_ops_s,
        "distance reduces throughput (50/50)"
    );
    assert!(
        far_8020.throughput_ops_s < near_8020.throughput_ops_s,
        "distance reduces throughput (80/20)"
    );
    let deg_5050 = 1.0 - far_5050.throughput_ops_s / near_5050.throughput_ops_s;
    let deg_8020 = 1.0 - far_8020.throughput_ops_s / near_8020.throughput_ops_s;
    assert!(
        deg_8020 > deg_5050,
        "read-heavy mixes degrade more with distance: 80/20 {:.1}% vs 50/50 {:.1}%",
        deg_8020 * 100.0,
        deg_5050 * 100.0
    );
}

/// §IV-B.2: placement affects delay far less than workload does.
#[test]
fn workload_dominates_distance_for_delay() {
    let near_busy = run(130, 1, MixConfig::RW_50_50, Placement::SameZone);
    let far_idle = run(
        20,
        1,
        MixConfig::RW_50_50,
        Placement::DifferentRegion(Region::EuWest1),
    );
    let d_near_busy = near_busy.avg_relative_delay_ms().expect("measured");
    let d_far_idle = far_idle.avg_relative_delay_ms().expect("measured");
    assert!(
        d_near_busy > d_far_idle,
        "a busy nearby slave ({d_near_busy:.1} ms) lags more than an idle \
         geo-replica ({d_far_idle:.1} ms)"
    );
}

/// Baseline (idle) heartbeat delay is small — milliseconds, not seconds —
/// since it is only shipping latency plus apply time plus clock offset.
#[test]
fn idle_baseline_is_milliseconds() {
    let r = run(20, 2, MixConfig::RW_50_50, Placement::SameZone);
    for d in &r.delays {
        let b = d.baseline_ms.expect("baseline measured");
        assert!(
            b.abs() < 1_000.0,
            "idle baseline should be small, got {b:.1} ms"
        );
    }
}

/// The read/write mix delivered by the cluster matches the configured ratio.
#[test]
fn delivered_mix_matches_configuration() {
    let r = run(80, 2, MixConfig::RW_80_20, Placement::SameZone);
    let frac = r.steady_reads as f64 / r.steady_ops as f64;
    assert!(
        (frac - 0.8).abs() < 0.05,
        "read fraction {frac:.2} should be near 0.80"
    );
}
