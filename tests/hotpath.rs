//! The plan cache's transparency contract at cluster level: a full timed
//! run with the cache on must be bit-identical to the same run with the
//! cache off — same seed, same workload, same report, down to the float
//! bits. Any divergence means the cache changed behaviour, not just speed.

use amdb::cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb::core::{run_cluster, ClusterConfig, Placement, RunReport};

fn run(users: u32, slaves: usize, plan_cache: bool) -> RunReport {
    run_cluster(
        ClusterConfig::builder()
            .slaves(slaves)
            .placement(Placement::SameZone)
            .mix(MixConfig::RW_50_50)
            .data_size(DataSize { scale: 100 })
            .workload(WorkloadConfig::quick(users))
            .plan_cache(plan_cache)
            .seed(42)
            .build(),
    )
}

fn assert_bit_identical(on: &RunReport, off: &RunReport) {
    assert_eq!(on.steady_ops, off.steady_ops);
    assert_eq!(on.steady_reads, off.steady_reads);
    assert_eq!(on.steady_writes, off.steady_writes);
    assert_eq!(on.steady_slave_reads, off.steady_slave_reads);
    assert_eq!(on.lost_writes, off.lost_writes);
    assert_eq!(
        on.throughput_ops_s.to_bits(),
        off.throughput_ops_s.to_bits(),
        "throughput diverged: {} vs {}",
        on.throughput_ops_s,
        off.throughput_ops_s
    );
    assert_eq!(
        on.master_utilization.to_bits(),
        off.master_utilization.to_bits()
    );
    assert_eq!(
        on.avg_relative_delay_ms().map(f64::to_bits),
        off.avg_relative_delay_ms().map(f64::to_bits),
        "relative delay diverged"
    );
    match (&on.latency_ms, &off.latency_ms) {
        (Some(a), Some(b)) => {
            assert_eq!(a.count, b.count);
            assert_eq!(a.mean.to_bits(), b.mean.to_bits());
            assert_eq!(a.p95.to_bits(), b.p95.to_bits());
            assert_eq!(a.max.to_bits(), b.max.to_bits());
        }
        (None, None) => {}
        _ => panic!("latency summary present in one run only"),
    }
}

#[test]
fn plan_cache_is_transparent_at_cluster_level() {
    let on = run(50, 2, true);
    let off = run(50, 2, false);
    assert_bit_identical(&on, &off);
}

#[test]
fn plan_cache_is_transparent_under_write_pressure() {
    // More users and one slave: the binlog-apply fast path carries most of
    // the slave's work, so this leg exercises the replication-side cache.
    let on = run(100, 1, true);
    let off = run(100, 1, false);
    assert_bit_identical(&on, &off);
}
