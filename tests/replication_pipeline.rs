//! Cross-crate integration: Cloudstone workload → SQL engine → binlog →
//! relay → replica apply, end to end (untimed path).

use amdb::cloudstone::{build_template, DataSize, MixConfig, OpClass, OpGenerator};
use amdb::repl::{collect_samples, HeartbeatPlugin, ReplicatedDb};
use amdb::sim::Rng;
use amdb::sql::{BinlogFormat, ForkRole, Lsn, Session, Value};

/// Every generated Cloudstone operation, executed through the replication
/// pipeline, leaves all replicas identical after a pump.
#[test]
fn cloudstone_workload_replicates_exactly() {
    let mut rng = Rng::new(77);
    let (template, counters) = build_template(DataSize { scale: 15 }, &mut rng);
    let mut master = template.fork(ForkRole::Master(BinlogFormat::Statement));
    let mut slave = template.fork(ForkRole::Slave);
    let mut gen = OpGenerator::new(counters, rng.derive("ops"));
    let mut session = Session::new();

    let mut shipped = Lsn(0);
    for step in 0..400 {
        session.now_micros = step * 50_000;
        let op = gen.generate(MixConfig::RW_50_50);
        if op.class == OpClass::Write {
            for (sql, params) in &op.statements {
                master.execute(&mut session, sql, params).expect("write");
            }
        }
        // Ship and apply incrementally every few steps.
        if step % 7 == 0 {
            for ev in master.binlog_from(shipped).to_vec() {
                slave.apply_event(&ev, session.now_micros).expect("apply");
                shipped = Lsn(ev.lsn.0 + 1);
            }
        }
    }
    for ev in master.binlog_from(shipped).to_vec() {
        slave.apply_event(&ev, 0).expect("final apply");
    }

    for table in ["users", "events", "event_tags", "attendees", "comments"] {
        assert_eq!(
            master.table_rows(table),
            slave.table_rows(table),
            "table {table} diverged"
        );
    }
}

/// The heartbeat instrumentation measures exactly the injected delay, end to
/// end through SQL, binlog encoding, and re-execution.
#[test]
fn heartbeat_measures_injected_delay() {
    let mut db = ReplicatedDb::new(BinlogFormat::Statement, 1);
    db.execute_master(amdb::repl::HEARTBEAT_SCHEMA, &[])
        .expect("schema");
    db.pump().expect("pump schema");

    let mut hb = HeartbeatPlugin::new();
    // Master commits at t, slave applies at t + 400ms (slave clock).
    for t in 1..=20i64 {
        db.set_now_micros(t * 1_000_000);
        let (sql, params) = hb.next_insert();
        db.execute_master(&sql, &params).expect("hb insert");
        db.set_now_micros(t * 1_000_000 + 400_000);
        db.pump().expect("pump");
    }

    // Pull both tables through SQL and verify the measured delays.
    let samples = {
        // Use the crate-level collector on raw engines.
        let mut m = db.master().fork(ForkRole::Master(BinlogFormat::Statement));
        let mut s = db.slave(0).fork(ForkRole::Slave);
        collect_samples(&mut m, &mut s).expect("samples")
    };
    assert_eq!(samples.len(), 20);
    for s in &samples {
        assert!(
            (s.delay_ms() - 400.0).abs() < 1e-6,
            "heartbeat {} measured {} ms",
            s.id,
            s.delay_ms()
        );
    }
}

/// Statement-based replication transmits parameters as literals but
/// re-evaluates non-deterministic functions; row-based transmits values.
/// Both must agree on deterministic content.
#[test]
fn binlog_formats_agree_on_deterministic_content() {
    for format in [BinlogFormat::Statement, BinlogFormat::Row] {
        let mut db = ReplicatedDb::new(format, 1);
        db.execute_master(
            "CREATE TABLE t (id INT PRIMARY KEY, txt TEXT, num DOUBLE)",
            &[],
        )
        .expect("schema");
        db.execute_master(
            "INSERT INTO t VALUES (?, ?, ?)",
            &[
                Value::Int(1),
                Value::Text("quote ' and unicode é".into()),
                Value::Double(2.5),
            ],
        )
        .expect("insert");
        db.execute_master("UPDATE t SET num = num * 2 WHERE id = 1", &[])
            .expect("update");
        db.pump().expect("pump");
        let r = db
            .execute_slave(0, "SELECT txt, num FROM t WHERE id = 1", &[])
            .expect("read");
        assert_eq!(
            r.rows[0],
            vec![
                Value::Text("quote ' and unicode é".into()),
                Value::Double(5.0)
            ],
            "under {format:?}"
        );
    }
}

/// The umbrella crate re-exports every subsystem.
#[test]
fn umbrella_reexports_compile() {
    let _ = amdb::sim::SimTime::ZERO;
    let _ = amdb::net::Region::UsEast1;
    let _ = amdb::clock::DriftingClock::perfect();
    let _ = amdb::metrics::OnlineStats::new();
    let _ = amdb::pool::PoolConfig::default();
    let _ = amdb::cloudstone::DataSize::SMALL;
    let _ = amdb::core::ClusterConfig::builder();
}
