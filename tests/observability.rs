//! Integration tests for the observability subsystem: determinism of the
//! trace export and the paper's §IV-A bottleneck-migration story as seen by
//! the bottleneck attributor.

use amdb::cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb::core::{run_cluster_observed, ClusterConfig, ObsConfig};
use amdb::experiments::exec::{parallel_map, Progress};
use amdb::experiments::obs_report::run_observed_cell;
use amdb::experiments::sweep::{run_sweep, SweepOptions, SweepSpec};
use amdb::experiments::Fidelity;
use amdb::obs::Component;

fn observed_cfg(users: u32, slaves: usize, seed: u64) -> ClusterConfig {
    ClusterConfig::builder()
        .slaves(slaves)
        .mix(MixConfig::RW_50_50)
        .data_size(DataSize { scale: 100 })
        .workload(WorkloadConfig::quick(users))
        .observability(ObsConfig {
            enabled: true,
            sample_interval_ms: 1_000,
            tsdb: true,
        })
        .seed(seed)
        .build()
}

/// Same seed, same config ⇒ byte-identical Chrome-trace export. This is the
/// determinism contract: every record is stamped with simulated time in
/// kernel event order, and the JSON encoder is a pure function of the
/// records.
#[test]
fn same_seed_trace_exports_are_byte_identical() {
    let (_, obs_a, _) = run_cluster_observed(observed_cfg(30, 2, 7));
    let (_, obs_b, _) = run_cluster_observed(observed_cfg(30, 2, 7));
    let a = obs_a.chrome_trace().expect("trace a");
    let b = obs_b.chrome_trace().expect("trace b");
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed traces must match byte for byte");
}

/// A different seed must actually change the trace (otherwise the
/// determinism test above proves nothing).
#[test]
fn different_seed_changes_the_trace() {
    let (_, obs_a, _) = run_cluster_observed(observed_cfg(30, 2, 7));
    let (_, obs_b, _) = run_cluster_observed(observed_cfg(30, 2, 8));
    assert_ne!(obs_a.chrome_trace(), obs_b.chrome_trace());
}

/// The exported trace carries events from every layer of the stack.
#[test]
fn trace_covers_all_stack_layers() {
    let (_, obs, _) = run_cluster_observed(observed_cfg(30, 2, 7));
    let rec = obs.recorder().expect("recorder present");
    for comp in [
        Component::Cpu,
        Component::Pool,
        Component::Proxy,
        Component::Repl,
        Component::Sql,
        Component::Cluster,
    ] {
        let in_records = rec.records().iter().any(|r| r.component() == comp);
        let in_registry = rec.registry().iter().any(|(k, _)| k.comp == comp);
        assert!(in_records || in_registry, "no events from {comp}");
    }
}

/// The parallel sweep executor is bit-compatible with the serial loop: the
/// quick fig2/fig5 and fig3/fig6 sweeps render byte-identical tables at
/// `--jobs 1` and `--jobs 4`. (The jobs count only changes wall-clock.)
#[test]
fn sweeps_are_byte_identical_across_jobs_counts() {
    // fig3/fig6's deepest quick cells (450 users × 11 slaves) cost minutes;
    // thin that grid here — bench_sweep exercises the full quick grids.
    let mut spec36 = SweepSpec::fig3_fig6(Fidelity::Quick);
    spec36.users = vec![50, 250];
    spec36.slaves = vec![1, 5];
    for spec in [SweepSpec::fig2_fig5(Fidelity::Quick), spec36] {
        let serial = run_sweep(&spec, &SweepOptions::serial());
        let parallel = run_sweep(&spec, &SweepOptions::silent(4));
        assert_eq!(serial.len(), parallel.len(), "{}", spec.name);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                s.throughput.render(),
                p.throughput.render(),
                "{}: throughput table diverged between jobs=1 and jobs=4",
                spec.name
            );
            assert_eq!(
                s.delay.render(),
                p.delay.render(),
                "{}: delay table diverged between jobs=1 and jobs=4",
                spec.name
            );
        }
    }
}

/// Observed runs (trace recording on) stay deterministic when fanned across
/// the worker pool: each cell's Chrome-trace export is byte-identical to
/// the same cell run serially.
#[test]
fn observed_traces_are_byte_identical_under_parallel_executor() {
    let cells: Vec<(u32, usize, u64)> = vec![(30, 1, 7), (30, 2, 7), (40, 2, 9), (30, 2, 8)];
    let run = |_: usize, &(users, slaves, seed): &(u32, usize, u64), _: &_| {
        let (_, obs, _) = run_cluster_observed(observed_cfg(users, slaves, seed));
        obs.chrome_trace().expect("trace")
    };
    let serial = parallel_map(&cells, 1, &Progress::Silent, run);
    let parallel = parallel_map(&cells, 4, &Progress::Silent, run);
    assert_eq!(serial.len(), cells.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert!(!s.is_empty());
        assert_eq!(s, p, "cell {i}: trace bytes diverged under parallel run");
    }
}

/// §IV-A shape check on a fig2-style mini-grid: with a single slave serving
/// every read, the slave CPU saturates first; with reads spread over three
/// slaves the master (all writes + binlog shipping) becomes the bottleneck.
#[test]
fn bottleneck_migrates_from_slave_to_master() {
    let one = run_observed_cell(1, 175, 42);
    let bn = one
        .bottleneck
        .bottleneck()
        .expect("1 slave at 175 users must saturate");
    assert_eq!(bn.comp, Component::Cpu);
    assert_eq!(bn.label, "slave0 cpu", "got {}", one.bottleneck.render());

    let three = run_observed_cell(3, 175, 42);
    let bn = three
        .bottleneck
        .bottleneck()
        .expect("3 slaves at 175 users must still saturate");
    assert_eq!(bn.comp, Component::Cpu);
    assert_eq!(bn.label, "master cpu", "got {}", three.bottleneck.render());
    assert!(
        three.report.throughput_ops_s > one.report.throughput_ops_s,
        "spreading reads must lift throughput until the master caps it"
    );
}

/// Telemetry determinism: same seed ⇒ byte-identical alert timeline,
/// waterfall rendering, and Chrome-trace export (now including flow
/// events); a different seed must change the alert timeline's trace.
#[test]
fn telemetry_outputs_are_byte_identical_for_same_seed() {
    use amdb::core::run_cluster_telemetry;
    let run = |seed: u64| {
        let (_, obs, _, t) = run_cluster_telemetry(observed_cfg(30, 2, seed));
        (obs.chrome_trace().expect("trace"), t.render())
    };
    let (trace_a, render_a) = run(7);
    let (trace_b, render_b) = run(7);
    assert_eq!(trace_a, trace_b, "same-seed telemetry traces match");
    assert_eq!(
        render_a, render_b,
        "same-seed alert/waterfall output matches"
    );
    let (trace_c, _) = run(8);
    assert_ne!(trace_a, trace_c, "different seed changes the trace");
}

/// Row-format cell with a parallel apply pipeline, telemetry on.
fn row_apply_cfg(workers: usize, tsdb: bool, seed: u64) -> ClusterConfig {
    use amdb::sql::binlog::BinlogFormat;
    ClusterConfig::builder()
        .slaves(2)
        .mix(MixConfig::RW_50_50)
        .data_size(DataSize { scale: 100 })
        .workload(WorkloadConfig::quick(120))
        .format(BinlogFormat::Row)
        .apply_workers(workers)
        .observability(ObsConfig {
            enabled: true,
            sample_interval_ms: 1_000,
            tsdb,
        })
        .seed(seed)
        .build()
}

/// Waterfall apply legs under row-format binlog with `apply_workers > 1`:
/// the apply stamp comes from the slave-local commit of the batch (not the
/// master clock), so every end-to-end sample is non-negative and dominates
/// its apply-service sample; and adding workers can only shrink (never
/// grow) the queue and end-to-end legs.
#[test]
fn apply_waterfall_legs_shrink_with_workers() {
    use amdb::core::run_cluster_telemetry;
    use amdb::metrics::QuantileSketch;
    let mut queue_p95 = Vec::new();
    let mut e2e_p95 = Vec::new();
    let mut applied = Vec::new();
    for workers in [1usize, 2, 4] {
        let (_, _, _, t) = run_cluster_telemetry(row_apply_cfg(workers, true, 11));
        let legs = t.waterfall.legs();
        assert_eq!(legs.len(), 2);
        for (s, leg) in legs.iter().enumerate() {
            assert!(
                leg.applied > 0,
                "workers={workers}: slave{s} applied nothing"
            );
            assert!(
                leg.apply_ms.count() > 0,
                "workers={workers}: no apply leg samples"
            );
            // Slave-local commit stamp: committed ≤ delivered ≤ apply_start
            // ≤ applied per writeset, so e2e ≥ apply sample for sample (the
            // 1% slack absorbs sketch bucketing).
            assert!(leg.e2e_ms.min().unwrap() >= 0.0);
            assert!(
                leg.e2e_ms.max().unwrap() >= leg.apply_ms.max().unwrap() * 0.99,
                "workers={workers} slave{s}: e2e must dominate the apply leg"
            );
        }
        let queue = QuantileSketch::merged(legs.iter().map(|l| &l.queue_ms));
        let e2e = QuantileSketch::merged(legs.iter().map(|l| &l.e2e_ms));
        queue_p95.push(queue.quantile(0.95).unwrap());
        e2e_p95.push(e2e.quantile(0.95).unwrap());
        applied.push(legs.iter().map(|l| l.applied).sum::<u64>());
    }
    for w in applied.windows(2) {
        assert_eq!(
            w[0], w[1],
            "worker count must not change how many rows apply"
        );
    }
    for (name, xs) in [("queue", &queue_p95), ("e2e", &e2e_p95)] {
        for w in xs.windows(2) {
            assert!(
                w[1] <= w[0] * 1.001,
                "{name} p95 must be monotone non-increasing in workers: {xs:?}"
            );
        }
    }
}

/// With `apply_workers > 1` the trace carries per-worker apply spans, the
/// batch flow arrows, the in-order-commit wait sketch, and the batch-bound
/// counters that attribute why each batch closed.
#[test]
fn parallel_apply_traces_carry_worker_spans_and_bounds() {
    use amdb::core::run_cluster_telemetry;
    let (_, obs, _, _) = run_cluster_telemetry(row_apply_cfg(4, true, 11));
    let json = obs.chrome_trace().expect("trace");
    assert!(
        json.contains("apply_worker"),
        "per-worker apply spans present"
    );
    let rec = obs.recorder().expect("recorder");
    let reg = rec.registry();
    assert!(
        reg.iter().any(|(k, _)| k.name == "apply_commit_wait_ms"),
        "in-order-commit wait sketch present"
    );
    let bounds: u64 = [
        "apply_batch_drained",
        "apply_conflict_bounded",
        "apply_capacity_bounded",
        "apply_barrier",
    ]
    .iter()
    .map(|n| reg.counter_value(Component::Repl, 1, n) + reg.counter_value(Component::Repl, 2, n))
    .sum();
    assert!(bounds > 0, "every closed batch must name its bound");
    // Satellite: the waterfall's inflight-map eviction counter is exported.
    assert!(
        reg.iter().any(|(k, _)| k.name == "wf_evicted"),
        "pending-waterfall eviction counter sampled"
    );
}

/// The time-series store is config-gated, deterministic, and mergeable:
/// same seed ⇒ byte-identical CSV; `tsdb: false` detaches it entirely.
#[test]
fn tsdb_store_is_deterministic_and_config_gated() {
    use amdb::core::run_cluster_telemetry;
    let run = |tsdb: bool| {
        let (_, mut obs, _, _) = run_cluster_telemetry(row_apply_cfg(4, tsdb, 11));
        obs.take_tsdb()
    };
    let a = run(true).expect("tsdb attached");
    let b = run(true).expect("tsdb attached");
    assert!(!a.is_empty(), "the run records time-series tracks");
    assert_eq!(
        a.csv(),
        b.csv(),
        "same-seed tsdb exports match byte for byte"
    );
    assert!(run(false).is_none(), "tsdb: false must detach the store");
}

/// Flow events (the causal write arrows) appear in the export exactly when
/// telemetry is on — an obs-only run's trace stays flow-free, so the
/// committed obs_report artifacts are unaffected by the telemetry layer.
#[test]
fn flow_events_appear_only_with_telemetry() {
    use amdb::core::run_cluster_telemetry;
    let (_, obs_plain, _) = run_cluster_observed(observed_cfg(30, 2, 7));
    assert!(!obs_plain.chrome_trace().unwrap().contains("\"ph\":\"s\""));
    let (_, obs_telem, _, _) = run_cluster_telemetry(observed_cfg(30, 2, 7));
    let json = obs_telem.chrome_trace().unwrap();
    assert!(json.contains("\"ph\":\"s\""), "flow start events present");
    assert!(json.contains("\"ph\":\"f\""), "flow end events present");
}
