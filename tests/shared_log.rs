//! Integration tests for the shared-log replication backend: statement-path
//! bit-identity, quorum-gated durability, log-replica fault injection, and
//! reattach-style failover (no acked write lost, no session-state reset).

use amdb::cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb::core::{
    run_cluster, BackendKind, ClusterConfig, ConsistencyConfig, ConsistencyPolicy, LogFaultPlan,
    LogStoreConfig, MasterFaultPlan, Placement, RunReport,
};
use amdb::sim::SimDuration;

fn base(users: u32, slaves: usize) -> amdb::core::ClusterBuilder {
    ClusterConfig::builder()
        .slaves(slaves)
        .placement(Placement::SameZone)
        .mix(MixConfig::RW_80_20)
        .data_size(DataSize { scale: 100 })
        .workload(WorkloadConfig::quick(users))
        .seed(17)
}

/// A structural fingerprint of a run: if two runs executed the same event
/// sequence, every one of these matches exactly.
fn fingerprint(r: &RunReport) -> (u64, u64, u64, String, Vec<u64>, String) {
    (
        r.sim_events,
        r.steady_ops,
        r.steady_slave_reads,
        format!("{:?}", r.latency_ms),
        r.reads_per_slave.clone(),
        format!("{:?}", r.delays),
    )
}

#[test]
fn statement_backend_is_bit_identical_to_default() {
    // The backend knob must be invisible unless opted into: an explicit
    // `--backend statement` run replays exactly the default pipeline (same
    // kernel event count, same measurements).
    let default_run = run_cluster(base(60, 2).build());
    let explicit = run_cluster(base(60, 2).backend(BackendKind::Statement).build());
    assert_eq!(fingerprint(&default_run), fingerprint(&explicit));
    assert!(default_run.shared_log.is_none());
}

#[test]
fn shared_log_run_completes_and_drains_durable() {
    let r = run_cluster(base(60, 2).backend(BackendKind::SharedLog).build());
    let sl = r.shared_log.as_ref().expect("shared-log report present");
    assert!(sl.records > 0, "writes were published to the log");
    assert_eq!(
        sl.durable_lsn, sl.published_lsn,
        "healthy log reaches quorum on everything published"
    );
    assert_eq!(sl.quorum_failures, 0, "no quorum failures without faults");
    assert_eq!(sl.ack_retries, 0, "no retries without faults");
    assert_eq!(r.lost_writes, 0);
    assert!(r.steady_ops > 0 && r.steady_writes > 0);
    // The read tier still measures replication delay through the log tail.
    assert!(r.delays.iter().any(|d| d.loaded_samples > 0));
}

#[test]
fn shared_log_slaves_converge_on_master() {
    use amdb::core::Cluster;
    use amdb::sim::Sim;

    let cfg = base(50, 2).backend(BackendKind::SharedLog).build();
    let mut sim = Sim::new();
    let mut world = Cluster::new(cfg);
    world.schedule_timeline(&mut sim);
    sim.run(&mut world);

    for s in 0..2 {
        assert_eq!(world.relay(s).backlog(), 0, "slave {s} drained");
    }
    for table in ["users", "events", "comments", "attendees", "heartbeat"] {
        let m = world.engine_mut(0).table_rows(table);
        for node in 1..=2 {
            assert_eq!(
                m,
                world.engine_mut(node).table_rows(table),
                "table {table} diverged on node {node}"
            );
        }
    }
}

#[test]
fn log_replica_faults_delay_but_never_lose_quorum_writes() {
    // Aggressive per-replica fault schedule: crashes every ~30 s plus slow
    // windows. Quorum (2/3) keeps every published write durable; the cost
    // shows up as retries/resends and longer quorum waits, not loss.
    let r = run_cluster(
        base(60, 2)
            .backend(BackendKind::SharedLog)
            .log_faults(LogFaultPlan {
                mtbf: SimDuration::from_secs(30),
                mttr: SimDuration::from_secs(5),
                slow_mtbf: Some(SimDuration::from_secs(45)),
                slow_mttr: SimDuration::from_secs(5),
                slow_factor: 8.0,
            })
            .build(),
    );
    let sl = r.shared_log.as_ref().expect("shared-log report present");
    assert!(
        sl.ack_retries > 0,
        "fault windows force transport retries: {sl:?}"
    );
    assert!(
        sl.replica_downtime_ms.iter().any(|&d| d > 0.0),
        "fault plan actually scheduled downtime"
    );
    assert_eq!(
        sl.durable_lsn, sl.published_lsn,
        "every published write reached quorum despite faults"
    );
    assert_eq!(r.lost_writes, 0, "no client-acked write lost to log faults");
    assert!(r.steady_ops > 0);
    let healthy = run_cluster(base(60, 2).backend(BackendKind::SharedLog).build());
    let h = healthy.shared_log.as_ref().unwrap();
    assert!(
        sl.quorum_wait_max_ms.unwrap_or(0.0) > h.quorum_wait_max_ms.unwrap_or(0.0),
        "faults lengthen the worst quorum wait"
    );
}

#[test]
fn shared_log_failover_reattaches_without_losing_acked_writes() {
    // Satellite regression: the master dies mid-steady — i.e. mid
    // quorum-append stream — and the promoted slave reattaches to the log
    // at the published frontier. Every client-acked write (quorum-gated, so
    // ≤ published) survives; only the master's unpublished local tail can
    // be lost, and the LSN space continues, so sessions and watermarks are
    // not reset.
    let phases = WorkloadConfig::quick(1).phases;
    let fail_at = phases.steady_start() - amdb::sim::SimTime::ZERO;
    let build = |backend| {
        base(60, 3)
            .backend(backend)
            .consistency(ConsistencyConfig::new(ConsistencyPolicy::ReadYourWrites))
            .master_fault(MasterFaultPlan {
                fail_at,
                detection_delay: SimDuration::from_secs(10),
            })
            .failover_resync(SimDuration::from_secs(30))
            .build()
    };
    let r = run_cluster(build(BackendKind::SharedLog));
    let sl = r.shared_log.as_ref().expect("shared-log report present");
    assert!(
        sl.recovery.is_some(),
        "failover recorded a log reattach: {:?}",
        r.membership_events
    );
    assert!(
        r.membership_events
            .iter()
            .any(|(_, e)| e.contains("reattach")),
        "reattach in the timeline: {:?}",
        r.membership_events
    );
    // Quorum-gated acks mean the publish frontier bounds loss; with a
    // healthy log the master publishes at commit, so nothing is lost at all.
    assert_eq!(r.lost_writes, 0, "no acked (or published) write lost");
    assert!(r.recovery_ms.is_some(), "recovery window measured");
    assert!(r.steady_writes > 0, "writes resumed on the new master");
    // Sessions survive the reattach: read-your-writes keeps routing slave
    // reads (a reset_all regression would wedge reads onto the master).
    assert!(
        r.steady_slave_reads > 0,
        "slave reads continue under read-your-writes after reattach"
    );
    let c = r.consistency.as_ref().unwrap();
    assert_eq!(c.sla_violations, 0, "read-your-writes never violated");

    // And the reattach beats the statement-path rebuild on recovery time.
    let stmt = run_cluster(build(BackendKind::Statement));
    assert!(
        r.recovery_ms.unwrap()
            < stmt
                .recovery_ms
                .expect("statement run also measured recovery"),
        "log reattach ({:.0} ms) beats snapshot rebuild ({:.0} ms)",
        r.recovery_ms.unwrap(),
        stmt.recovery_ms.unwrap()
    );
}

#[test]
fn shared_log_quorum_gates_write_latency() {
    // Slow the log service down massively: quorum waits must show up in
    // client-visible write latency (the ack is gated on durability).
    let fast = run_cluster(base(40, 1).backend(BackendKind::SharedLog).build());
    let slow = run_cluster(
        base(40, 1)
            .backend(BackendKind::SharedLog)
            .log_store(LogStoreConfig {
                append_service_us: 20_000,
                ..LogStoreConfig::default()
            })
            .build(),
    );
    let f = fast.latency_ms.as_ref().unwrap().mean;
    let s = slow.latency_ms.as_ref().unwrap().mean;
    assert!(
        s > f,
        "a 20 ms log append must raise mean op latency: {s:.2} vs {f:.2}"
    );
}
