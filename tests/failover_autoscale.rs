//! Integration tests for the availability extensions: slave failure,
//! replacement, and staleness-driven autoscaling.

use amdb::cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb::core::{run_cluster, AutoscaleConfig, ClusterConfig, FaultPlan, Placement};
use amdb::sim::SimDuration;

fn base(users: u32, slaves: usize) -> amdb::core::ClusterBuilder {
    ClusterConfig::builder()
        .slaves(slaves)
        .placement(Placement::SameZone)
        .mix(MixConfig::RW_80_20)
        .data_size(DataSize { scale: 100 })
        .workload(WorkloadConfig::quick(users))
        .seed(9)
}

#[test]
fn slave_failure_redistributes_reads() {
    let phases = WorkloadConfig::quick(1).phases;
    let fail_at = phases.steady_start() - amdb::sim::SimTime::ZERO; // at steady start
    let cfg = base(60, 3)
        .fault(FaultPlan {
            slave: 1,
            fail_at,
            recover_after: None,
        })
        .build();
    let r = run_cluster(cfg);
    assert!(r.steady_ops > 0, "cluster keeps serving after a failure");
    assert!(
        r.membership_events
            .iter()
            .any(|(_, e)| e.contains("failed")),
        "failure recorded: {:?}",
        r.membership_events
    );
    // Surviving slaves absorb the reads: the dead slave's count freezes at
    // its pre-failure value, well below the survivors'.
    let reads = &r.reads_per_slave;
    assert!(
        reads[1] < reads[0] && reads[1] < reads[2],
        "dead slave served fewest reads: {reads:?}"
    );
}

#[test]
fn failed_slave_replacement_rejoins_and_converges() {
    let cfg = base(40, 2)
        .fault(FaultPlan {
            slave: 0,
            fail_at: SimDuration::from_secs(120),
            recover_after: Some(SimDuration::from_secs(90)),
        })
        .build();
    let r = run_cluster(cfg);
    assert!(
        r.membership_events
            .iter()
            .any(|(_, e)| e.contains("replaced")),
        "replacement recorded: {:?}",
        r.membership_events
    );
    // The replaced slave serves reads again after rejoining.
    assert!(r.reads_per_slave[0] > 0);
    // And it is measurably replicating (heartbeats matched post-recovery).
    assert!(
        r.delays[0].loaded_samples > 0,
        "recovered slave applies heartbeats"
    );
}

#[test]
fn autoscaling_grows_cluster_under_staleness_pressure() {
    // One slave at high read load: staleness blows past the SLO, and the
    // controller launches replicas up to the cap.
    let cfg = base(170, 1)
        .autoscale(AutoscaleConfig {
            check_interval: SimDuration::from_secs(10),
            staleness_slo_ms: 2_000.0,
            max_slaves: 4,
            sync_duration: SimDuration::from_secs(30),
            cooldown: SimDuration::from_secs(60),
        })
        .build();
    let r = run_cluster(cfg);
    assert!(
        r.final_slaves > 1,
        "controller scaled out: events {:?}",
        r.membership_events
    );
    assert!(r.final_slaves <= 4, "cap respected");
    assert!(
        r.membership_events
            .iter()
            .any(|(_, e)| e.contains("autoscale")),
        "scale-out recorded"
    );
    // New slaves actually serve reads.
    let late_reads: u64 = r.reads_per_slave[1..].iter().sum();
    assert!(late_reads > 0, "scaled-out slaves take traffic");
}

#[test]
fn autoscaling_stays_put_when_slo_is_met() {
    let cfg = base(20, 2)
        .autoscale(AutoscaleConfig {
            staleness_slo_ms: 10_000.0,
            ..AutoscaleConfig::default()
        })
        .build();
    let r = run_cluster(cfg);
    assert_eq!(r.final_slaves, 2, "no scale-out under light load");
    assert!(r.membership_events.is_empty());
}

#[test]
fn autoscaled_run_beats_static_run_on_staleness() {
    let static_cfg = base(170, 1).build();
    let auto_cfg = base(170, 1)
        .autoscale(AutoscaleConfig {
            check_interval: SimDuration::from_secs(10),
            staleness_slo_ms: 2_000.0,
            max_slaves: 4,
            sync_duration: SimDuration::from_secs(30),
            cooldown: SimDuration::from_secs(60),
        })
        .build();
    let s = run_cluster(static_cfg);
    let a = run_cluster(auto_cfg);
    assert!(
        a.throughput_ops_s >= s.throughput_ops_s,
        "autoscaling cannot hurt throughput: {:.1} vs {:.1}",
        a.throughput_ops_s,
        s.throughput_ops_s
    );
    // Delay on the original slave improves once load is shared.
    let ds = s.delays[0].relative_ms.unwrap_or(f64::MAX);
    let da = a.delays[0].relative_ms.unwrap_or(f64::MAX);
    assert!(
        da < ds,
        "autoscaling reduces staleness on the hot slave: {da:.0} ms vs {ds:.0} ms"
    );
}

#[test]
fn master_failover_promotes_and_resumes_writes() {
    let phases = WorkloadConfig::quick(1).phases;
    let fail_at = phases.steady_start() - amdb::sim::SimTime::ZERO;
    let cfg = base(50, 3)
        .master_fault(amdb::core::MasterFaultPlan {
            fail_at,
            detection_delay: SimDuration::from_secs(15),
        })
        .build();
    let r = run_cluster(cfg);
    let evs: Vec<&str> = r
        .membership_events
        .iter()
        .map(|(_, e)| e.as_str())
        .collect();
    assert!(evs.iter().any(|e| e.contains("master failed")), "{evs:?}");
    assert!(evs.iter().any(|e| e.contains("promoted")), "{evs:?}");
    // Writes resumed after failover: steady writes happened although the
    // master died at steady start.
    assert!(
        r.steady_writes > 0,
        "writes resumed on the promoted master: {evs:?}"
    );
    assert!(r.steady_reads > 0, "reads flowed throughout");
}

#[test]
fn master_failover_converges_on_new_master() {
    use amdb::core::Cluster;
    use amdb::sim::Sim;

    let cfg = base(30, 3)
        .master_fault(amdb::core::MasterFaultPlan {
            fail_at: SimDuration::from_secs(150),
            detection_delay: SimDuration::from_secs(10),
        })
        .seed(13)
        .build();
    let mut sim = Sim::new();
    let mut world = Cluster::new(cfg);
    world.schedule_timeline(&mut sim);
    sim.run(&mut world);

    // All relays drained, and every live replica matches the new master
    // exactly; the corpse (the deposed master, identifiable because its
    // engine still carries the master role) is excluded.
    for s in 0..3 {
        assert_eq!(world.relay(s).backlog(), 0, "slave {s} drained");
    }
    for table in ["users", "events", "comments", "attendees", "heartbeat"] {
        let m = world.engine_mut(0).table_rows(table);
        for node in 1..=3 {
            if world.engine_mut(node).is_master() {
                continue; // the deposed master's corpse
            }
            assert_eq!(
                m,
                world.engine_mut(node).table_rows(table),
                "table {table} diverged on live node {node}"
            );
        }
    }
}

#[test]
fn master_failover_reports_lost_writes() {
    // Read-saturated slaves lag the master by seconds (the Figs 5/6 delay
    // surge); promoting a lagging replica discards its un-applied backlog —
    // §II: "once the updated replica goes offline before duplicating data,
    // data loss may occur".
    // Deep saturation (the Fig 5 one-slave regime: delay in the tens of
    // seconds) so the backlog outlives the detection window.
    let cfg = ClusterConfig::builder()
        .slaves(1)
        .placement(Placement::SameZone)
        .mix(MixConfig::RW_50_50)
        .data_size(DataSize::SMALL)
        .workload(WorkloadConfig::quick(175))
        .master_fault(amdb::core::MasterFaultPlan {
            fail_at: SimDuration::from_secs(280),
            detection_delay: SimDuration::from_secs(2),
        })
        .seed(29)
        .build();
    let r = run_cluster(cfg);
    assert!(
        r.lost_writes > 0,
        "async failover under write load must lose writes: events {:?}",
        r.membership_events
    );
    assert!(
        r.membership_events.iter().any(|(_, e)| e.contains("lost")),
        "loss recorded in the timeline"
    );
}

#[test]
fn slave_failover_mid_batch_replays_from_committed_lsn() {
    // Row-format binlog with 4 apply workers on a loaded cell: the fault
    // lands while the slave's SQL thread is group-committing batches, so
    // the in-flight batch dies with the node. Because batch commit is
    // in-order (a batch's LSN range commits atomically and sequentially),
    // the replacement bootstraps from the last in-order-committed LSN and
    // replays cleanly — nothing skipped, nothing applied twice.
    use amdb::core::Cluster;
    use amdb::sim::Sim;
    use amdb::sql::binlog::BinlogFormat;

    let cfg = base(90, 2)
        .format(BinlogFormat::Row)
        .apply_workers(4)
        .fault(FaultPlan {
            slave: 0,
            fail_at: SimDuration::from_secs(150),
            recover_after: Some(SimDuration::from_secs(60)),
        })
        .build();
    let mut sim = Sim::new();
    let mut world = Cluster::new(cfg);
    world.schedule_timeline(&mut sim);
    sim.run(&mut world);
    let events = sim.events_executed();
    let r = world.report(events);

    assert!(
        r.membership_events
            .iter()
            .any(|(_, e)| e.contains("replaced")),
        "replacement recorded: {:?}",
        r.membership_events
    );
    assert!(
        r.apply_batches < r.apply_events,
        "the scheduler actually batched ({} batches / {} events)",
        r.apply_batches,
        r.apply_events
    );
    // Both relays fully drained, cursors consistent with no gaps.
    for s in 0..2 {
        assert_eq!(world.relay(s).backlog(), 0, "slave {s} drained");
        assert_eq!(
            world.relay(s).received_upto(),
            world.relay(s).applied_upto(),
            "slave {s} cursors agree"
        );
    }
    // And the replayed slave's content matches the master's exactly.
    for table in ["users", "events", "comments", "attendees", "heartbeat"] {
        let m = world.engine_mut(0).table_rows(table);
        for node in 1..=2 {
            assert_eq!(
                m,
                world.engine_mut(node).table_rows(table),
                "table {table} diverged on node {node} after mid-batch failover"
            );
        }
    }
}

#[test]
fn master_failover_mid_batch_converges_on_new_master() {
    // The master dies while every slave is group-committing row batches;
    // the promoted replica's binlog position is its last in-order-committed
    // LSN, and the survivors re-sync from it without divergence.
    use amdb::core::Cluster;
    use amdb::sim::Sim;
    use amdb::sql::binlog::BinlogFormat;

    let cfg = base(60, 3)
        .format(BinlogFormat::Row)
        .apply_workers(8)
        .master_fault(amdb::core::MasterFaultPlan {
            fail_at: SimDuration::from_secs(150),
            detection_delay: SimDuration::from_secs(10),
        })
        .seed(13)
        .build();
    let mut sim = Sim::new();
    let mut world = Cluster::new(cfg);
    world.schedule_timeline(&mut sim);
    sim.run(&mut world);

    for s in 0..3 {
        assert_eq!(world.relay(s).backlog(), 0, "slave {s} drained");
    }
    for table in ["users", "events", "comments", "attendees", "heartbeat"] {
        let m = world.engine_mut(0).table_rows(table);
        for node in 1..=3 {
            if world.engine_mut(node).is_master() {
                continue; // the deposed master's corpse
            }
            assert_eq!(
                m,
                world.engine_mut(node).table_rows(table),
                "table {table} diverged on live node {node}"
            );
        }
    }
}
