//! The consistency window: measuring staleness with heartbeats, and buying
//! it down with stronger replication modes.
//!
//! ```text
//! cargo run --release --example consistency_window
//! ```
//!
//! Reproduces the paper's measurement technique in miniature — a heartbeat
//! row committed on the master once per second and re-executed on each slave
//! with its own clock (§III-A) — then compares the async / semi-sync / sync
//! commit disciplines on the same workload: the window of staleness shrinks
//! as write latency grows (§II's trade-off, measured).

use amdb::cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb::core::{run_cluster, ClusterConfig, Placement};
use amdb::metrics::Table;
use amdb::repl::ReplMode;

fn main() {
    println!("measuring the consistency window of a 2-slave cluster at 120 users\n");

    let mut table = Table::new(
        "replication mode vs consistency window (2 slaves, 50/50)",
        vec![
            "mode".into(),
            "throughput (ops/s)".into(),
            "mean op latency (ms)".into(),
            "p95 op latency (ms)".into(),
            "staleness window (ms)".into(),
        ],
    );

    for mode in [ReplMode::Async, ReplMode::SemiSync, ReplMode::Sync] {
        let cfg = ClusterConfig::builder()
            .slaves(2)
            .placement(Placement::DifferentZone)
            .mix(MixConfig::RW_50_50)
            .data_size(DataSize { scale: 60 })
            .workload(WorkloadConfig::quick(120))
            .mode(mode)
            .seed(31)
            .build();
        let r = run_cluster(cfg);
        let (mean, p95) = r
            .latency_ms
            .as_ref()
            .map(|l| (l.mean, l.p95))
            .unwrap_or((f64::NAN, f64::NAN));
        table.push_row(vec![
            mode.name().into(),
            format!("{:.1}", r.throughput_ops_s),
            format!("{mean:.0}"),
            format!("{p95:.0}"),
            r.avg_relative_delay_ms()
                .map(|d| format!("{d:.1}"))
                .unwrap_or_else(|| "-".into()),
        ]);

        println!("{} mode — per-slave heartbeat detail:", mode.name());
        for (i, d) in r.delays.iter().enumerate() {
            println!(
                "  slave {i}: baseline {} ms, loaded {} ms, relative {} ms \
                 ({} samples, {} still in flight)",
                fmt(d.baseline_ms),
                fmt(d.loaded_ms),
                fmt(d.relative_ms),
                d.loaded_samples,
                d.missing_samples
            );
        }
        println!();
    }

    println!("{}", table.render());
    println!(
        "async gives the fastest writes but the widest staleness window;\n\
         sync closes the window at the price of write latency — the §II\n\
         trade-off. Web 2.0 apps (the paper's focus) choose async and accept\n\
         eventual consistency."
    );
}

fn fmt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.1}")).unwrap_or_else(|| "-".into())
}
