//! Application-managed operations: surviving a slave failure and scaling
//! the replica tier on a staleness SLO.
//!
//! ```text
//! cargo run --release --example failover_and_autoscaling
//! ```
//!
//! The paper's introduction motivates the application-managed pattern with
//! exactly these two capabilities: replication exists "to enable automatic
//! failover management and ensure high availability", and the application
//! "can have the full control in dynamically allocating and configuring the
//! physical resources of the database tier as needed". This example runs
//! both timelines in the simulated cloud.

use amdb::cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb::core::{run_cluster, AutoscaleConfig, ClusterConfig, FaultPlan, Placement};
use amdb::sim::SimDuration;

fn main() {
    // ---- Part 1: a slave dies mid-run and is replaced -----------------
    println!("=== failover: 3 slaves, slave 1 dies, replaced 3 minutes later ===\n");
    let w = WorkloadConfig::quick(60);
    let fail_at = w.phases.steady_start() - amdb::sim::SimTime::ZERO;
    let cfg = ClusterConfig::builder()
        .slaves(3)
        .placement(Placement::SameZone)
        .mix(MixConfig::RW_80_20)
        .data_size(DataSize { scale: 80 })
        .workload(w)
        .fault(FaultPlan {
            slave: 1,
            fail_at,
            recover_after: Some(SimDuration::from_secs(180)),
        })
        .seed(8)
        .build();
    let r = run_cluster(cfg);
    println!(
        "throughput through the failure: {:.1} ops/s",
        r.throughput_ops_s
    );
    println!("reads per slave: {:?}", r.reads_per_slave);
    for (t, e) in &r.membership_events {
        println!("  t={t:>5.0}s  {e}");
    }

    // ---- Part 2: staleness-SLO autoscaling ----------------------------
    println!("\n=== autoscaling: 1 slave + 170 users, SLO = 2 s of staleness ===\n");
    let cfg = ClusterConfig::builder()
        .slaves(1)
        .placement(Placement::SameZone)
        .mix(MixConfig::RW_80_20)
        .data_size(DataSize { scale: 100 })
        .workload(WorkloadConfig::quick(170))
        .autoscale(AutoscaleConfig {
            check_interval: SimDuration::from_secs(10),
            staleness_slo_ms: 2_000.0,
            max_slaves: 5,
            sync_duration: SimDuration::from_secs(45),
            cooldown: SimDuration::from_secs(90),
        })
        .seed(8)
        .build();
    let r = run_cluster(cfg);
    println!(
        "cluster grew from 1 to {} slaves; throughput {:.1} ops/s",
        r.final_slaves, r.throughput_ops_s
    );
    for (t, e) in &r.membership_events {
        println!("  t={t:>5.0}s  {e}");
    }
    println!(
        "\nhot-slave relative staleness ended at {} ms",
        r.delays[0]
            .relative_ms
            .map(|d| format!("{d:.0}"))
            .unwrap_or_else(|| "-".into())
    );
}
