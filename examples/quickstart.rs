//! Quickstart: an in-memory master-slave replicated SQL database.
//!
//! ```text
//! cargo run --example quickstart
//! cargo run --example quickstart -- --binlog-format row --apply-workers 4
//! ```
//!
//! Shows the untimed replication API (`amdb::repl::ReplicatedDb`): writes go
//! to the master, reads to slaves, writesets ship via the binlog, and slaves
//! are stale until the replication middleware pumps — exactly the
//! asynchronous master-slave architecture the paper studies. Then runs a
//! small *timed* cluster with observability and telemetry on: the online
//! SLO engine prints a deterministic alert timeline (delay surges come
//! attributed to the saturated resource), the staleness waterfall shows
//! where each slave's replication delay accrued, and the trace lands in
//! `quickstart_trace.json` — open it in `chrome://tracing` or Perfetto to
//! watch the simulated reads, writes, replication applies, and the flow
//! arrows tying each traced write to its applies on every slave.

use amdb::cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb::core::{run_cluster_telemetry, ClusterConfig, ObsConfig};
use amdb::repl::ReplicatedDb;
use amdb::sql::{BinlogFormat, Value};
use amdb::telemetry::AlertKind;

/// `--binlog-format {statement|row}` and `--apply-workers N`. The defaults
/// (statement, 1) reproduce MySQL's classic serial-apply setup; row format
/// with N > 1 turns on the writeset-dependency parallel apply scheduler.
fn parse_args() -> (BinlogFormat, usize) {
    let (mut format, mut workers) = (BinlogFormat::Statement, 1usize);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--binlog-format" => {
                format = match args.next().as_deref() {
                    Some("row") => BinlogFormat::Row,
                    Some("statement") => BinlogFormat::Statement,
                    other => panic!("--binlog-format expects statement|row, got {other:?}"),
                }
            }
            "--apply-workers" => {
                workers = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--apply-workers expects a positive integer")
            }
            other => panic!("unknown flag {other}"),
        }
    }
    (format, workers)
}

fn main() {
    let (format, workers) = parse_args();
    // One master, two slaves, MySQL-style replication (statement-based by
    // default; `--binlog-format row` ships row images instead).
    let mut db = ReplicatedDb::new(format, 2);
    db.set_apply_workers(workers);

    db.execute_master(
        "CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, \
         author VARCHAR(64) NOT NULL, body TEXT, created_at TIMESTAMP NOT NULL)",
        &[],
    )
    .expect("schema");
    db.pump().expect("replicate DDL");

    // Writes are routed to the master only.
    db.set_now_micros(1_000_000);
    db.execute_master(
        "INSERT INTO posts (author, body, created_at) VALUES (?, ?, NOW_MICROS())",
        &[Value::from("alice"), Value::from("hello, replicated world")],
    )
    .expect("insert");

    // Asynchronous replication: the slaves have not applied the write yet.
    let stale = db
        .execute_slave(0, "SELECT COUNT(*) FROM posts", &[])
        .expect("read");
    println!(
        "slave 0 before pump: {} posts (stale read!)",
        stale.rows[0][0]
    );

    // The middleware ships the binlog and the slaves apply it.
    let applied = db.pump().expect("pump");
    println!("pumped {applied} binlog event(s) to 2 slaves");

    for s in 0..db.n_slaves() {
        let fresh = db
            .execute_slave(s, "SELECT author, body FROM posts ORDER BY id", &[])
            .expect("read");
        println!(
            "slave {s} after pump: {} — \"{}\"",
            fresh.rows[0][0], fresh.rows[0][1]
        );
    }

    // Reads can use the full SQL subset: joins, aggregates, ordering.
    db.execute_master(
        "INSERT INTO posts (author, body, created_at) VALUES \
         ('bob', 'second post', NOW_MICROS()), ('alice', 'third', NOW_MICROS())",
        &[],
    )
    .expect("more inserts");
    db.pump().expect("pump");
    let agg = db
        .execute_slave(
            1,
            "SELECT author, COUNT(*) AS n FROM posts GROUP BY author ORDER BY n DESC",
            &[],
        )
        .expect("aggregate");
    println!("posts per author (read from slave 1):");
    for row in &agg.rows {
        println!("  {:>6}: {}", row[0], row[1]);
    }

    // Part two: the timed simulation, with observability *and* telemetry
    // on. Same architecture, but users/pool/proxy/CPUs/replication all run
    // under the discrete-event clock, every layer traces what it does, and
    // the online SLO engine watches the replication delay as it runs.
    let (report, obs, bottleneck, telemetry) = run_cluster_telemetry(
        ClusterConfig::builder()
            .slaves(2)
            .mix(MixConfig::RW_50_50)
            .data_size(DataSize { scale: 100 })
            .workload(WorkloadConfig::quick(120))
            .format(format)
            .apply_workers(workers)
            .observability(ObsConfig {
                enabled: true,
                sample_interval_ms: 1_000,
                tsdb: true,
            })
            .seed(42)
            .build(),
    );
    println!();
    println!(
        "timed run: {:.1} ops/s steady, staleness {:?} ms",
        report.throughput_ops_s,
        report.avg_relative_delay_ms().map(|d| d.round())
    );
    println!("{}", bottleneck.render());

    // The telemetry bundle: where each slave's replication delay accrued
    // (network / queueing / apply legs) and the deterministic alert
    // timeline the SLO engine produced while the run was still going.
    println!("{}", telemetry.waterfall.table().render());
    println!("alert timeline:");
    if telemetry.slo.alerts().is_empty() {
        println!("  (no alerts — the run stayed within SLO)");
    }
    for a in telemetry.slo.alerts() {
        let kind = match a.kind {
            AlertKind::Fire => "FIRE ",
            AlertKind::Clear => "clear",
        };
        let why = match &a.attribution {
            Some(res) => format!(" — attributed to {res}"),
            None => String::new(),
        };
        println!(
            "  [{:>6.1}s] {kind} {} inst={} value={:.1}{why}",
            a.at.as_secs_f64(),
            a.rule,
            a.inst,
            a.value
        );
    }
    println!();
    let json = obs.chrome_trace().expect("observability was enabled");
    match std::fs::write("quickstart_trace.json", &json) {
        Ok(()) => println!(
            "wrote quickstart_trace.json ({} bytes) — open in chrome://tracing",
            json.len()
        ),
        Err(e) => eprintln!("quickstart_trace.json: {e}"),
    }
}
