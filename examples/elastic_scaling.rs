//! Elastic scaling: add slaves until adding more stops helping.
//!
//! ```text
//! cargo run --release --example elastic_scaling
//! ```
//!
//! The application-managed pattern's promise is elasticity: when read load
//! grows, launch another slave VM. The paper's core finding is the limit of
//! that promise — the master's write capacity caps the whole cluster. This
//! example sweeps the slave count at a fixed offered load and shows the
//! ceiling emerging, along with which tier is saturated at each step.

use amdb::cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb::core::{run_cluster, ClusterConfig, Placement};
use amdb::metrics::Table;

fn main() {
    let mut table = Table::new(
        "elastic scaling: 180 users, 50/50 mix, same zone",
        vec![
            "slaves".into(),
            "throughput (ops/s)".into(),
            "master util".into(),
            "max slave util".into(),
            "bottleneck".into(),
        ],
    );

    let mut last_throughput = 0.0;
    for slaves in 1..=6 {
        let cfg = ClusterConfig::builder()
            .slaves(slaves)
            .placement(Placement::SameZone)
            .mix(MixConfig::RW_50_50)
            .data_size(DataSize { scale: 100 })
            .workload(WorkloadConfig::quick(180))
            .seed(3)
            .build();
        let r = run_cluster(cfg);
        let bottleneck = if r.master_utilization >= 0.95 {
            "master (write ceiling)"
        } else if r.max_slave_utilization() >= 0.95 {
            "slaves (read capacity)"
        } else {
            "none (think-time bound)"
        };
        table.push_row(vec![
            slaves.to_string(),
            format!("{:.1}", r.throughput_ops_s),
            format!("{:.2}", r.master_utilization),
            format!("{:.2}", r.max_slave_utilization()),
            bottleneck.into(),
        ]);
        last_throughput = r.throughput_ops_s;
    }

    println!("{}", table.render());
    println!(
        "ceiling ≈ {last_throughput:.1} ops/s — once the master saturates, adding\n\
         slaves is pure over-provisioning (the paper's §IV-A saturation\n\
         transition). Scaling further requires scaling *writes*: a bigger\n\
         master, sharding, or multi-master replication."
    );
}
