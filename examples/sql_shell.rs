//! An interactive SQL shell over a replicated pair — type statements, watch
//! them replicate.
//!
//! ```text
//! cargo run --example sql_shell
//! ```
//!
//! Commands: plain SQL executes on the **master**; `\\s <sql>` executes on
//! the slave (reads see only pumped state); `\\pump` ships + applies the
//! binlog; `\\explain <select>` shows the planner's access paths; `\\q`
//! quits. Non-interactive use: pipe statements on stdin.

use amdb::repl::ReplicatedDb;
use amdb::sql::{BinlogFormat, QueryResult};
use std::io::{self, BufRead, Write};

fn print_result(r: &QueryResult) {
    if !r.columns.is_empty() {
        println!("{}", r.columns.join(" | "));
        println!("{}", "-".repeat(r.columns.join(" | ").len()));
        for row in &r.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("{}", cells.join(" | "));
        }
        println!(
            "({} row{})",
            r.rows.len(),
            if r.rows.len() == 1 { "" } else { "s" }
        );
    } else {
        println!(
            "ok ({} row{} affected{})",
            r.rows_affected,
            if r.rows_affected == 1 { "" } else { "s" },
            r.last_insert_id
                .map(|id| format!(", last insert id {id}"))
                .unwrap_or_default()
        );
    }
}

fn main() {
    let mut db = ReplicatedDb::new(BinlogFormat::Statement, 1);
    let mut clock_us: i64 = 0;
    println!("amdb sql shell — master + 1 slave, statement-based replication");
    println!("  <sql>          run on the master");
    println!("  \\s <sql>       run on the slave (stale until \\pump)");
    println!("  \\explain <sql> show access paths");
    println!("  \\pump          ship + apply the binlog");
    println!("  \\q             quit");

    let stdin = io::stdin();
    loop {
        print!("amdb> ");
        let _ = io::stdout().flush();
        let Some(Ok(line)) = stdin.lock().lines().next() else {
            break;
        };
        let line = line.trim().to_string();
        clock_us += 1_000_000;
        db.set_now_micros(clock_us);
        if line.is_empty() {
            continue;
        }
        if line == "\\q" {
            break;
        }
        if line == "\\pump" {
            match db.pump() {
                Ok(n) => println!("pumped {n} event(s)"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if let Some(sql) = line.strip_prefix("\\s ") {
            match db.execute_slave(0, sql, &[]) {
                Ok(r) => print_result(&r),
                Err(e) => println!("slave error: {e}"),
            }
            continue;
        }
        if let Some(sql) = line.strip_prefix("\\explain ") {
            match db.execute_master(&format!("EXPLAIN {sql}"), &[]) {
                Ok(r) => print_result(&r),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        match db.execute_master(&line, &[]) {
            Ok(r) => print_result(&r),
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}
