//! Geo-replication: what happens to throughput and staleness when the
//! slaves move away from the master.
//!
//! ```text
//! cargo run --release --example geo_replication
//! ```
//!
//! Runs the full timed cluster simulation (VMs, WAN latencies, drifting
//! clocks, binlog shipping) for the paper's three placements — same zone,
//! different zone, different region — and prints the paper's two metrics
//! side by side. The headline result of §IV-B.2 shows up directly: distance
//! costs some throughput, but the replication delay is dominated by workload
//! (queueing on the slaves), not geography.

use amdb::cloudstone::{DataSize, MixConfig, WorkloadConfig};
use amdb::core::{run_cluster, ClusterConfig, Placement};
use amdb::metrics::Table;
use amdb::net::Region;

fn main() {
    let placements = [
        Placement::SameZone,
        Placement::DifferentZone,
        Placement::DifferentRegion(Region::EuWest1),
        Placement::DifferentRegion(Region::ApNortheast1),
    ];

    let mut table = Table::new(
        "geo-replication: 3 slaves, 100 users, 50/50 mix",
        vec![
            "placement".into(),
            "throughput (ops/s)".into(),
            "p95 latency (ms)".into(),
            "avg relative delay (ms)".into(),
        ],
    );

    for placement in placements {
        let cfg = ClusterConfig::builder()
            .slaves(3)
            .placement(placement)
            .mix(MixConfig::RW_50_50)
            .data_size(DataSize { scale: 100 })
            .workload(WorkloadConfig::quick(100))
            .seed(11)
            .build();
        let master_zone = cfg.master_zone;
        let report = run_cluster(cfg);
        table.push_row(vec![
            placement.label(master_zone),
            format!("{:.1}", report.throughput_ops_s),
            report
                .latency_ms
                .as_ref()
                .map(|l| format!("{:.0}", l.p95))
                .unwrap_or_else(|| "-".into()),
            report
                .avg_relative_delay_ms()
                .map(|d| format!("{d:.1}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }

    println!("{}", table.render());
    println!(
        "note: farther slaves lose some end-to-end throughput (slower round\n\
         trips for the same closed-loop users), but the replication delay is\n\
         driven by load on the replicas, not distance — the paper's §IV-B.2\n\
         conclusion that geographic replication is viable if the workload is\n\
         well managed."
    );
}
