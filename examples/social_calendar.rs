//! The Cloudstone social-events calendar running on a replicated database.
//!
//! ```text
//! cargo run --release --example social_calendar
//! ```
//!
//! Loads the paper's benchmark schema and data, then plays a stream of
//! Web 2.0 operations (browse, search, create, join, comment) through the
//! read/write-splitting proxy against one master and two slaves, pumping
//! replication periodically and reporting the staleness a reader observes.

use amdb::cloudstone::{build_template, DataSize, MixConfig, OpClass, OpGenerator};
use amdb::proxy::{OpClass as ProxyClass, Proxy, RoundRobin, Route};
use amdb::repl::RelayQueue;
use amdb::sim::Rng;
use amdb::sql::{BinlogFormat, Engine, ForkRole, Session};

fn main() {
    let mut rng = Rng::new(2024);
    let size = DataSize { scale: 50 };
    let (template, counters) = build_template(size, &mut rng);
    println!(
        "loaded events calendar: {} users, {} events, {} tags",
        size.users(),
        size.events(),
        size.tags()
    );

    let mut master = template.fork(ForkRole::Master(BinlogFormat::Statement));
    let mut slaves: Vec<(Engine, RelayQueue)> = (0..2)
        .map(|_| (template.fork(ForkRole::Slave), RelayQueue::new()))
        .collect();
    let mut proxy = Proxy::new(2, Box::new(RoundRobin::default()));
    let mut gen = OpGenerator::new(counters, rng.derive("ops"));
    let mut session = Session::new();
    let mut clock_us: i64 = 0;

    let mut reads = 0u32;
    let mut writes = 0u32;
    for step in 1..=300 {
        clock_us += 100_000; // 100 ms between operations
        session.now_micros = clock_us;
        let op = gen.generate(MixConfig::RW_80_20);
        let class = match op.class {
            OpClass::Read => ProxyClass::Read,
            OpClass::Write => ProxyClass::Write,
        };
        match proxy.route(class) {
            Route::Master => {
                for (sql, params) in &op.statements {
                    master.execute(&mut session, sql, params).expect("write op");
                }
                writes += 1;
            }
            Route::Slave(s) => {
                let mut rs = Session::new();
                rs.now_micros = clock_us;
                for (sql, params) in &op.statements {
                    slaves[s].0.execute(&mut rs, sql, params).expect("read op");
                }
                reads += 1;
                proxy.read_done(s, 20.0);
            }
        }

        // The replication middleware pumps every 25 operations, so slaves
        // lag the master in between — visible staleness.
        if step % 25 == 0 {
            let master_events = master.table_rows("events").unwrap();
            let slave_events = slaves[0].0.table_rows("events").unwrap();
            println!(
                "step {step:>3}: master has {master_events} events, slave 0 sees {slave_events} \
                 (staleness: {} rows)",
                master_events - slave_events
            );
            for (engine, relay) in &mut slaves {
                let events: Vec<_> = master.binlog_from(relay.received_upto()).to_vec();
                relay.receive(events);
                while let Some(ev) = relay.pop_next() {
                    engine.apply_event(&ev, clock_us).expect("apply");
                    relay.mark_applied(ev.lsn);
                }
            }
        }
    }

    println!(
        "\nprocessed {reads} reads (split over slaves: {:?}) and {writes} writes",
        proxy.reads_per_slave()
    );

    // Everyone converged?
    let mut check = Session::new();
    let q = "SELECT COUNT(*) FROM events";
    let m = master.execute(&mut check, q, &[]).unwrap().rows[0][0].clone();
    for (i, (engine, _)) in slaves.iter_mut().enumerate() {
        let c = engine.execute(&mut check, q, &[]).unwrap().rows[0][0].clone();
        assert_eq!(m, c, "slave {i} diverged");
    }
    println!("all replicas converged at {m} events");

    // A taste of the query surface: most-commented events, via a slave.
    let mut rs = Session::new();
    let top = slaves[0]
        .0
        .execute(
            &mut rs,
            "SELECT e.title, COUNT(*) AS comments FROM comments c \
             INNER JOIN events e ON c.event_id = e.id \
             GROUP BY c.event_id ORDER BY comments DESC, e.title LIMIT 5",
            &[],
        )
        .unwrap();
    println!("\nmost commented events (read from slave 0):");
    for row in &top.rows {
        println!("  {:>2} comments — {}", row[1], row[0]);
    }
}
